package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// salesAggs is the orders workload's aggregate list.
func salesAggs() []expr.AggSpec {
	return []expr.AggSpec{
		{Func: expr.AggCountRows},
		{Func: expr.AggSum, Arg: expr.Col(2)},
	}
}

// RunT7Ghosts (Table 7): group churn — transactions that create and empty
// aggregate groups. The escrow strategy delegates row creation and erase to
// system transactions (ghosts); the X-lock baseline performs structural
// inserts/deletes inside user transactions, serializing group creators.
func RunT7Ghosts(s Scale) (*stats.Table, error) {
	const clients = 8
	const think = 200 * time.Microsecond
	perClient := s.div(600)
	tb := &stats.Table{
		ID:     "T7",
		Title:  "group-churn throughput: ghost protocol vs direct structural maintenance",
		Header: []string{"strategy", "tx/s", "aborts/1k", "ghosts created", "ghosts erased"},
	}
	for _, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyXLock} {
		db, cleanup, err := tempDB(core.Options{
			LockTimeout:        10 * time.Second,
			GhostCleanInterval: 5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		w := workload.Orders{Products: 8, Skew: 0, Strategy: strat}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		// Churn: insert an order then delete it — each group's COUNT crosses
		// zero constantly.
		ops := make([]workload.Op, clients)
		for c := range ops {
			base := int64((c + 1) * 10_000_000)
			next := base
			ops[c] = func(db *core.DB, rng *rand.Rand) error {
				next++
				product := int64(rng.Intn(8))
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return err
				}
				row := record.Row{record.Int(next), record.Int(product), record.Int(1)}
				if err := tx.Insert("orders", row); err != nil {
					tx.Rollback()
					return err
				}
				time.Sleep(think) // multi-statement transaction
				if err := tx.Commit(); err != nil {
					return err
				}
				tx, err = db.Begin(txn.ReadCommitted)
				if err != nil {
					return err
				}
				if err := tx.Delete("orders", record.Row{record.Int(next)}); err != nil {
					tx.Rollback()
					return err
				}
				time.Sleep(think)
				return tx.Commit()
			}
		}
		runs := workload.RunConcurrentOps(db, perClient, 17, ops)
		st := db.Stats()
		cleanup()
		abortsPerK := float64(0)
		if runs.Ops > 0 {
			abortsPerK = 1000 * float64(runs.Aborts) / float64(runs.Ops)
		}
		if strat == catalog.StrategyEscrow {
			tb.HeadlineName, tb.Headline = "ghost_churn_tx_per_sec", 2*runs.Throughput()
		}
		// Each op is two transactions.
		tb.AddRow(strategyName(strat), stats.F(2*runs.Throughput()), stats.F(abortsPerK),
			stats.F(float64(st.GhostsCreated)), stats.F(float64(st.GhostsErased)))
	}
	tb.Notes = append(tb.Notes,
		"xlock performs no ghost operations: groups are inserted/deleted inside user transactions")
	return tb, nil
}

// RunT8Recovery (Table 8): crash the database mid-workload and measure
// restart: records replayed, losers undone, recovery time, and — crucially —
// that every view equals recompute-from-base afterwards.
func RunT8Recovery(s Scale) (*stats.Table, error) {
	txnCounts := []int{500, 2_000, 8_000}
	if s.Factor > 1 {
		txnCounts = []int{200, 800, 2_000}
	}
	tb := &stats.Table{
		ID:     "T8",
		Title:  "crash recovery vs log length",
		Header: []string{"committed txns", "replayed records", "losers", "recovery", "views consistent"},
	}
	for _, n := range txnCounts {
		dir, err := os.MkdirTemp("", "vtxnbench-rec-*")
		if err != nil {
			return nil, err
		}
		db, err := core.Open(dir, core.Options{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		w := workload.Banking{Accounts: 500, Branches: 8, Strategy: catalog.StrategyEscrow, InitialBalance: 100}
		if err := w.Setup(db); err != nil {
			db.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			if err := w.DepositOp(db, rng); err != nil {
				db.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		// Leave two losers in flight and crash.
		l1, _ := db.Begin(txn.ReadCommitted)
		l1.Insert("accounts", record.Row{record.Int(1_000_001), record.Int(0), record.Int(9)})
		l2, _ := db.Begin(txn.ReadCommitted)
		l2.Insert("accounts", record.Row{record.Int(1_000_002), record.Int(1), record.Int(9)})
		db.Crash(true)

		start := time.Now()
		db2, err := core.Open(dir, core.Options{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		recTime := time.Since(start)
		sum := db2.RecoverySummary()
		consistent := "yes"
		if err := db2.CheckConsistency(); err != nil {
			consistent = fmt.Sprintf("NO: %v", err)
		}
		db2.Close()
		os.RemoveAll(dir)
		if recTime > 0 {
			// Largest log size is the last row; replay rate is the trackable metric.
			tb.HeadlineName, tb.Headline = "recovery_replayed_records_per_sec", float64(sum.Replayed)/recTime.Seconds()
		}
		tb.AddRow(stats.F(float64(n)), stats.F(float64(sum.Replayed)),
			stats.F(float64(sum.Losers)), stats.D(recTime), consistent)
	}
	tb.Notes = append(tb.Notes, "recovery = snapshot load + redo + logical undo of losers")
	return tb, nil
}

// RunF9Deferred (Figure 9): immediate (escrow) vs deferred maintenance —
// deferred updates are cheaper because the commit path skips the view fold;
// immediate maintenance keeps queries exact at every instant. Since the
// background applier now keeps deferred views bounded-stale, the "stale rows
// before refresh" column reports only whatever the applier has not caught up
// with at the moment of the refresh (usually ~0); F9D measures the applier
// tier itself.
func RunF9Deferred(s Scale) (*stats.Table, error) {
	const clients = 8
	perClient := s.div(1000)
	tb := &stats.Table{
		ID:    "F9",
		Title: "immediate (escrow) vs deferred maintenance",
		Header: []string{"strategy", "update tx/s", "stale view rows before refresh",
			"refresh cost", "query after refresh"},
	}
	for _, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyDeferred} {
		db, cleanup, err := tempDB(core.Options{})
		if err != nil {
			return nil, err
		}
		w := workload.Orders{Products: 64, Skew: 1.2, Strategy: strat,
			ThinkTime: 200 * time.Microsecond}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		runs := runOrderClients(db, w, clients, perClient)

		// How stale is the view now? (0 for immediate maintenance.)
		stale, err := db.RefreshView(workload.SalesView)
		var refreshCost time.Duration
		if err != nil {
			cleanup()
			return nil, err
		}
		start := time.Now()
		if _, err := db.RefreshView(workload.SalesView); err != nil { // warm second refresh = diff cost floor
			cleanup()
			return nil, err
		}
		refreshCost = time.Since(start)
		queryLat, err := timeQueries(db, 20, func(tx *core.Tx, rng *rand.Rand) error {
			_, _, err := tx.GetViewRow(workload.SalesView, record.Row{record.Int(int64(rng.Intn(64)))})
			return err
		})
		cleanup()
		if err != nil {
			return nil, err
		}
		if strat == catalog.StrategyEscrow {
			tb.HeadlineName, tb.Headline = "immediate_update_tx_per_sec", runs.Throughput()
		}
		tb.AddRow(strategyName(strat), stats.F(runs.Throughput()),
			stats.F(float64(stale)), stats.D(refreshCost), stats.D(queryLat))
	}
	tb.Notes = append(tb.Notes,
		"the paper argues for immediate maintenance: staleness is 0 by construction",
		"deferred staleness is bounded by the background applier; see F9D for its drain behavior")
	return tb, nil
}

// RunT10Ablations (Table 10): design-choice ablations — the MIN/MAX
// fallback, lock escalation, and the fsync mode.
func RunT10Ablations(s Scale) (*stats.Table, error) {
	const clients = 8
	perClient := s.div(800)
	tb := &stats.Table{
		ID:     "T10",
		Title:  "ablations (8 writers, 4 hot branches)",
		Header: []string{"variant", "tx/s", "notes"},
	}

	// (a) SUM-only escrow vs SUM+MAX (forces the X-lock fallback).
	for _, withMax := range []bool{false, true} {
		db, cleanup, err := tempDB(core.Options{})
		if err != nil {
			return nil, err
		}
		aggs := []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		}
		name := "escrow view (SUM/COUNT only)"
		if withMax {
			aggs = append(aggs, expr.AggSpec{Func: expr.AggMax, Arg: expr.Col(2)})
			name = "escrow view + MAX (X-lock fallback)"
		}
		if err := db.CreateTable("accounts", []catalog.Column{
			{Name: "id", Kind: record.KindInt64},
			{Name: "branch", Kind: record.KindInt64},
			{Name: "balance", Kind: record.KindInt64},
		}, []int{0}); err != nil {
			cleanup()
			return nil, err
		}
		if err := db.CreateIndexedView(catalog.View{
			Name: workload.ViewName, Kind: catalog.ViewAggregate, Left: "accounts",
			GroupByCols: []int{1}, Aggs: aggs, Strategy: catalog.StrategyEscrow,
		}); err != nil {
			cleanup()
			return nil, err
		}
		w := workload.Banking{Accounts: 1000, Branches: 4, Strategy: catalog.StrategyEscrow,
			InitialBalance: 100, ThinkTime: 300 * time.Microsecond}
		if err := w.Load(db); err != nil {
			cleanup()
			return nil, err
		}
		runs := workload.RunConcurrent(db, clients, perClient, 23, w.DepositOp)
		cleanup()
		note := "E locks, commit-time folds"
		if withMax {
			note = "MIN/MAX is not commutative: whole row falls back to X"
		} else {
			tb.HeadlineName, tb.Headline = "escrow_sum_only_tx_per_sec", runs.Throughput()
		}
		tb.AddRow(name, stats.F(runs.Throughput()), note)
	}

	// (b) Lock escalation on/off for scan-heavy transactions.
	for _, threshold := range []int{0, 64} {
		db, cleanup, err := tempDB(core.Options{EscalationThreshold: threshold})
		if err != nil {
			return nil, err
		}
		w := workload.Banking{Accounts: 2000, Branches: 4, Strategy: catalog.StrategyEscrow, InitialBalance: 100}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		bulk := func(db *core.DB, rng *rand.Rand) error {
			tx, err := db.Begin(txn.ReadCommitted)
			if err != nil {
				return err
			}
			// Touch 200 rows: far past the escalation threshold.
			for i := 0; i < 200; i++ {
				a := int64(rng.Intn(2000))
				row, ok, err := tx.Get("accounts", record.Row{record.Int(a)})
				if err != nil || !ok {
					tx.Rollback()
					return err
				}
				if err := tx.Update("accounts", record.Row{record.Int(a)},
					map[int]record.Value{2: record.Int(row[2].AsInt() + 1)}); err != nil {
					tx.Rollback()
					return err
				}
			}
			return tx.Commit()
		}
		runs := workload.RunConcurrent(db, 2, s.div(40), 29, bulk)
		st := db.Stats()
		cleanup()
		name := "escalation off"
		if threshold > 0 {
			name = fmt.Sprintf("escalation at %d key locks", threshold)
		}
		tb.AddRow(name, stats.F(runs.Throughput()),
			fmt.Sprintf("%d escalations, %d lock requests", st.Escalations, st.Lock.Requests))
	}

	// (c) Fold-latch striping: one global latch vs 128 stripes. With a
	// single stripe, every commit's fold serializes on the same mutex —
	// re-introducing exactly the bottleneck escrow removed.
	for _, stripes := range []int{1, 128} {
		db, cleanup, err := tempDB(core.Options{FoldLatchStripes: stripes})
		if err != nil {
			return nil, err
		}
		w := workload.Banking{Accounts: 1000, Branches: 64, Strategy: catalog.StrategyEscrow,
			InitialBalance: 100, ThinkTime: 100 * time.Microsecond}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		runs := workload.RunConcurrent(db, 16, s.div(600), 37, w.DepositOp)
		cleanup()
		name := fmt.Sprintf("fold latch: %d stripe(s)", stripes)
		tb.AddRow(name, stats.F(runs.Throughput()), "16 writers, 64 groups")
	}

	// (d) Commit durability: buffered (SyncNone) vs fsync-per-group-commit.
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"group commit, no fsync", core.Options{}},
		{"group commit, fsync", core.Options{SyncMode: wal.SyncData}},
	} {
		db, cleanup, err := tempDB(mode.opts)
		if err != nil {
			return nil, err
		}
		w := workload.Banking{Accounts: 1000, Branches: 4, Strategy: catalog.StrategyEscrow, InitialBalance: 100}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		runs := workload.RunConcurrent(db, clients, s.div(400), 31, w.DepositOp)
		cleanup()
		tb.AddRow(mode.name, stats.F(runs.Throughput()), "8 concurrent committers coalesce syncs")
	}
	return tb, nil
}
