package verify

import (
	"testing"

	"repro/internal/record"
)

func ent(k string, vals ...int64) Entry {
	row := make(record.Row, len(vals))
	for i, v := range vals {
		row[i] = record.Int(v)
	}
	return Entry{Key: record.EncodeKey(record.Row{record.Str(k)}), Val: row}
}

func TestCompareAgree(t *testing.T) {
	want := []Entry{ent("a", 1), ent("b", 2)}
	have := []Entry{ent("a", 1), ent("b", 2)}
	if d := Compare(want, have, 0); len(d) != 0 {
		t.Fatalf("expected no diffs, got %v", d)
	}
}

func TestCompareKinds(t *testing.T) {
	want := []Entry{ent("a", 1), ent("c", 3), ent("d", 4)}
	have := []Entry{ent("b", 2), ent("c", 30), ent("d", 4)}
	diffs := Compare(want, have, 0)
	if len(diffs) != 3 {
		t.Fatalf("expected 3 diffs, got %d: %v", len(diffs), diffs)
	}
	if diffs[0].Kind != DiffMissing || diffs[1].Kind != DiffExtra || diffs[2].Kind != DiffMismatch {
		t.Fatalf("unexpected kinds: %v %v %v", diffs[0].Kind, diffs[1].Kind, diffs[2].Kind)
	}
	for _, d := range diffs {
		if d.Error("v").Error() == "" {
			t.Fatal("empty rendering")
		}
	}
}

func TestCompareTails(t *testing.T) {
	// Extra tail on the have side and missing tail on the want side.
	if d := Compare([]Entry{ent("a", 1)}, []Entry{ent("a", 1), ent("z", 9)}, 0); len(d) != 1 || d[0].Kind != DiffExtra {
		t.Fatalf("have-tail: got %v", d)
	}
	if d := Compare([]Entry{ent("a", 1), ent("z", 9)}, []Entry{ent("a", 1)}, 0); len(d) != 1 || d[0].Kind != DiffMissing {
		t.Fatalf("want-tail: got %v", d)
	}
}

func TestCompareMax(t *testing.T) {
	want := []Entry{ent("a", 1), ent("b", 1), ent("c", 1)}
	if d := Compare(want, nil, 2); len(d) != 2 {
		t.Fatalf("cap not honored: got %d diffs", len(d))
	}
}

func TestClip(t *testing.T) {
	es := []Entry{ent("a", 1), ent("b", 2), ent("c", 3)}
	lo := es[1].Key
	hi := es[2].Key
	got := Clip(es, lo, hi)
	if len(got) != 1 || string(got[0].Key) != string(es[1].Key) {
		t.Fatalf("clip [b,c): got %d entries", len(got))
	}
	if got := Clip(es, nil, nil); len(got) != 3 {
		t.Fatalf("open clip: got %d", len(got))
	}
	if got := Clip(es, hi, nil); len(got) != 1 {
		t.Fatalf("tail clip: got %d", len(got))
	}
}
