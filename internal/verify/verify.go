// Package verify is the shared recompute/compare core behind both
// consistency checks of the engine: the offline, quiescent
// core.CheckConsistency and the online, snapshot-paced background scrubber
// (internal/scrub). Both express "the view equals a recompute over its
// source relation" as a walk over two key-sorted entry lists — keeping the
// two checkers on one comparator means they cannot drift apart in what they
// accept.
package verify

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/view"
)

// Entry is one (key, decoded stored value) pair of a view relation — the
// same shape view.Maintainer.Recompute produces.
type Entry = view.Entry

// DiffKind classifies one divergence between a view's stored contents and
// its recompute.
type DiffKind uint8

const (
	// DiffMissing: the recompute produces the group but the view has no
	// live row for it.
	DiffMissing DiffKind = iota + 1
	// DiffExtra: the view holds a live row the recompute does not produce.
	DiffExtra
	// DiffMismatch: both sides have the group but the stored values differ.
	DiffMismatch
)

// String names the diff kind for events and error text.
func (k DiffKind) String() string {
	switch k {
	case DiffMissing:
		return "missing"
	case DiffExtra:
		return "extra"
	case DiffMismatch:
		return "mismatch"
	default:
		return fmt.Sprintf("DiffKind(%d)", uint8(k))
	}
}

// Diff is one divergence: the group key, what the recompute wants, and what
// the view actually stores (Want is nil for DiffExtra, Have for DiffMissing).
type Diff struct {
	Kind DiffKind
	Key  []byte
	Want record.Row
	Have record.Row
}

// Error renders the diff as the consistency-check error for view name —
// the message shape CheckConsistency has always reported.
func (d Diff) Error(name string) error {
	switch d.Kind {
	case DiffMissing:
		return fmt.Errorf("core: view %q key %x: stored (absent), recompute %v", name, d.Key, d.Want)
	case DiffExtra:
		return fmt.Errorf("core: view %q key %x: stored %v, recompute (absent)", name, d.Key, d.Have)
	default:
		return fmt.Errorf("core: view %q key %x: stored %v, recompute %v", name, d.Key, d.Have, d.Want)
	}
}

// Detail renders the expected-vs-actual half of the diff for trace events
// (the key is carried separately there).
func (d Diff) Detail() string {
	switch d.Kind {
	case DiffMissing:
		return fmt.Sprintf("expected %v, actual missing", d.Want)
	case DiffExtra:
		return fmt.Sprintf("expected absent, actual %v", d.Have)
	default:
		return fmt.Sprintf("expected %v, actual %v", d.Want, d.Have)
	}
}

// Compare walks two key-sorted entry lists — want from a recompute, have
// from the view's stored rows — and returns every divergence, up to max
// (max <= 0 means unlimited). Both lists must be sorted by key ascending;
// recompute output and B-tree / snapshot scans already are.
func Compare(want, have []Entry, max int) []Diff {
	var diffs []Diff
	full := func() bool { return max > 0 && len(diffs) >= max }
	i, j := 0, 0
	for i < len(want) && j < len(have) {
		if full() {
			return diffs
		}
		switch c := record.CompareKeys(want[i].Key, have[j].Key); {
		case c < 0:
			diffs = append(diffs, Diff{Kind: DiffMissing, Key: want[i].Key, Want: want[i].Val})
			i++
		case c > 0:
			diffs = append(diffs, Diff{Kind: DiffExtra, Key: have[j].Key, Have: have[j].Val})
			j++
		default:
			if record.CompareRows(have[j].Val, want[i].Val) != 0 {
				diffs = append(diffs, Diff{Kind: DiffMismatch, Key: want[i].Key, Want: want[i].Val, Have: have[j].Val})
			}
			i++
			j++
		}
	}
	for ; i < len(want) && !full(); i++ {
		diffs = append(diffs, Diff{Kind: DiffMissing, Key: want[i].Key, Want: want[i].Val})
	}
	for ; j < len(have) && !full(); j++ {
		diffs = append(diffs, Diff{Kind: DiffExtra, Key: have[j].Key, Have: have[j].Val})
	}
	return diffs
}

// Clip returns the entries of es whose key lies in [lo, hi) — nil bounds
// mean open ends. es must be key-sorted; the scrubber uses this to cut a
// full recompute down to the slice it is verifying this tick.
func Clip(es []Entry, lo, hi []byte) []Entry {
	start := 0
	for start < len(es) && lo != nil && record.CompareKeys(es[start].Key, lo) < 0 {
		start++
	}
	end := start
	for end < len(es) && (hi == nil || record.CompareKeys(es[end].Key, hi) < 0) {
		end++
	}
	return es[start:end]
}
