package snapshot

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/record"
)

func buildFixture(t *testing.T) (*catalog.Catalog, map[id.Tree]*btree.Tree) {
	t.Helper()
	cat := catalog.New()
	tbl, err := cat.AddTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	v, err := cat.AddView(catalog.View{
		Name: "totals", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs:        []expr.AggSpec{{Func: expr.AggCountRows}},
	})
	if err != nil {
		t.Fatal(err)
	}
	trees := map[id.Tree]*btree.Tree{
		tbl.ID: btree.New(),
		v.ID:   btree.New(),
	}
	for i := 0; i < 500; i++ {
		key := record.EncodeKey(record.Row{record.Int(int64(i))})
		val := record.EncodeRow(record.Row{record.Int(int64(i)), record.Int(int64(i % 7))})
		trees[tbl.ID].Put(key, val, false)
	}
	// A ghost entry must survive the round trip.
	trees[v.ID].Put([]byte("ghost-key"), []byte("ghost-val"), true)
	trees[v.ID].Put([]byte("live-key"), []byte("live-val"), false)
	return cat, trees
}

func TestWriteReadRoundTrip(t *testing.T) {
	cat, trees := buildFixture(t)
	path := filepath.Join(t.TempDir(), "snap")
	if err := Write(path, cat, trees, 12345); err != nil {
		t.Fatal(err)
	}
	cat2, trees2, nextTxn, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if nextTxn != 12345 {
		t.Fatalf("nextTxn = %d", nextTxn)
	}
	if len(cat2.Tables()) != 1 || len(cat2.Views()) != 1 {
		t.Fatalf("catalog lost objects")
	}
	if len(trees2) != len(trees) {
		t.Fatalf("tree count %d != %d", len(trees2), len(trees))
	}
	for tid, tr := range trees {
		tr2 := trees2[tid]
		if tr2 == nil {
			t.Fatalf("tree %s missing", tid)
		}
		a := tr.Items(nil, nil, true)
		b := tr2.Items(nil, nil, true)
		if len(a) != len(b) {
			t.Fatalf("tree %s: %d items != %d", tid, len(a), len(b))
		}
		for i := range a {
			if string(a[i].Key) != string(b[i].Key) ||
				string(a[i].Val) != string(b[i].Val) ||
				a[i].Ghost != b[i].Ghost {
				t.Fatalf("tree %s item %d mismatch", tid, i)
			}
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadCorruption(t *testing.T) {
	cat, trees := buildFixture(t)
	path := filepath.Join(t.TempDir(), "snap")
	if err := Write(path, cat, trees, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)

	// Flip a byte anywhere: the CRC must catch it.
	for _, pos := range []int{0, 5, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0xFF
		badPath := filepath.Join(t.TempDir(), "bad")
		os.WriteFile(badPath, bad, 0o644)
		if _, _, _, err := Read(badPath); err == nil {
			t.Errorf("corruption at %d accepted", pos)
		}
	}
	// Truncations at every length fail cleanly.
	for cut := 0; cut < len(data); cut += 97 {
		cutPath := filepath.Join(t.TempDir(), "cut")
		os.WriteFile(cutPath, data[:cut], 0o644)
		if _, _, _, err := Read(cutPath); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, _, _, err := Read(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteAtomicNoTempLeftover(t *testing.T) {
	cat, trees := buildFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := Write(path, cat, trees, 1); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "snap" {
		t.Fatalf("directory contents: %v", entries)
	}
	// Overwriting an existing snapshot works (rename replaces).
	if err := Write(path, cat, trees, 2); err != nil {
		t.Fatal(err)
	}
	_, _, nextTxn, err := Read(path)
	if err != nil || nextTxn != 2 {
		t.Fatalf("overwrite: %d %v", nextTxn, err)
	}
}

func TestEmptySnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	if err := Write(path, catalog.New(), nil, 1); err != nil {
		t.Fatal(err)
	}
	cat, trees, nextTxn, err := Read(path)
	if err != nil || nextTxn != 1 || len(trees) != 0 || len(cat.Tables()) != 0 {
		t.Fatalf("empty snapshot: %v %v %d %v", cat, trees, nextTxn, err)
	}
}
