// Package snapshot reads and writes checkpoint snapshots: a CRC-protected
// image of the catalog, every tree's entries (including ghost bits), and the
// transaction-ID high-water mark. A snapshot is written quiesced (no active
// transactions), so it is transactionally consistent by construction; the
// log of the same generation replays everything after it.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/id"
)

var magic = []byte("VTXNSNAP1")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an unreadable snapshot.
var ErrCorrupt = errors.New("snapshot: corrupt file")

// Write atomically writes a snapshot to path (temp file + rename).
func Write(path string, cat *catalog.Catalog, trees map[id.Tree]*btree.Tree, nextTxn id.Txn) error {
	return WriteFS(fault.OS{}, path, cat, trees, nextTxn)
}

// WriteFS is Write on an injectable filesystem.
func WriteFS(fsys fault.FS, path string, cat *catalog.Catalog, trees map[id.Tree]*btree.Tree, nextTxn id.Txn) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: create: %w", err)
	}
	crc := crc32.New(crcTable)
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)

	var scratch []byte
	put := func(p []byte) error {
		_, err := w.Write(p)
		return err
	}
	putUvarint := func(v uint64) error {
		scratch = binary.AppendUvarint(scratch[:0], v)
		return put(scratch)
	}
	putFramed := func(p []byte) error {
		if err := putUvarint(uint64(len(p))); err != nil {
			return err
		}
		return put(p)
	}

	write := func() error {
		if err := put(magic); err != nil {
			return err
		}
		if err := putUvarint(uint64(nextTxn)); err != nil {
			return err
		}
		if err := putFramed(cat.Encode()); err != nil {
			return err
		}
		ids := make([]id.Tree, 0, len(trees))
		for tid := range trees {
			ids = append(ids, tid)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if err := putUvarint(uint64(len(ids))); err != nil {
			return err
		}
		for _, tid := range ids {
			if err := putUvarint(uint64(tid)); err != nil {
				return err
			}
			items := trees[tid].Items(nil, nil, true)
			if err := putUvarint(uint64(len(items))); err != nil {
				return err
			}
			for _, it := range items {
				if err := putFramed(it.Key); err != nil {
					return err
				}
				if err := putFramed(it.Val); err != nil {
					return err
				}
				g := byte(0)
				if it.Ghost {
					g = 1
				}
				if err := put([]byte{g}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := write(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: write: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: flush: %w", err)
	}
	// Trailer: CRC of everything before it, written directly to the file.
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc.Sum32())
	if _, err := f.Write(tr[:]); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: trailer: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: close: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: install: %w", err)
	}
	return nil
}

// Read loads a snapshot.
func Read(path string) (cat *catalog.Catalog, trees map[id.Tree]*btree.Tree, nextTxn id.Txn, err error) {
	return ReadFS(fault.OS{}, path)
}

// ReadFS is Read on an injectable filesystem.
func ReadFS(fsys fault.FS, path string) (cat *catalog.Catalog, trees map[id.Tree]*btree.Tree, nextTxn id.Txn, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(data) < len(magic)+4 {
		return nil, nil, 0, ErrCorrupt
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(trailer) {
		return nil, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if string(body[:len(magic)]) != string(magic) {
		return nil, nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	d := &cursor{buf: body[len(magic):]}
	nextTxn = id.Txn(d.uvarint())
	catBlob := d.framed()
	if d.err != nil {
		return nil, nil, 0, d.err
	}
	cat, err = catalog.Decode(catBlob)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%w: catalog: %v", ErrCorrupt, err)
	}
	trees = make(map[id.Tree]*btree.Tree)
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		tid := id.Tree(d.uvarint())
		tree := btree.New()
		for m := d.uvarint(); m > 0 && d.err == nil; m-- {
			key := d.framed()
			val := d.framed()
			ghost := d.byte_() != 0
			if d.err == nil {
				tree.Put(key, val, ghost)
			}
		}
		trees[tid] = tree
	}
	if d.err != nil {
		return nil, nil, 0, d.err
	}
	if len(d.buf) != 0 {
		return nil, nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	return cat, trees, nextTxn, nil
}

type cursor struct {
	buf []byte
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = ErrCorrupt
	}
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.buf = c.buf[n:]
	return v
}

func (c *cursor) framed() []byte {
	n := c.uvarint()
	if c.err != nil || n > uint64(len(c.buf)) {
		c.fail()
		return nil
	}
	out := c.buf[:n]
	c.buf = c.buf[n:]
	return out
}

func (c *cursor) byte_() byte {
	if c.err != nil || len(c.buf) == 0 {
		c.fail()
		return 0
	}
	b := c.buf[0]
	c.buf = c.buf[1:]
	return b
}
