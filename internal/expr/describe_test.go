package expr

import "testing"

func TestDescribe(t *testing.T) {
	out := Describe([]Expr{Col(0), Gt(Col(1), ConstInt(5))})
	if out != "col0, (col1 > 5)" {
		t.Fatalf("Describe = %q", out)
	}
	if Describe(nil) != "" {
		t.Fatal("empty Describe")
	}
}
