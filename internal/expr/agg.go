package expr

import (
	"fmt"

	"repro/internal/record"
)

// AggFunc identifies an aggregate function.
type AggFunc uint8

// Aggregate functions supported by indexed views.
const (
	// AggCountRows is COUNT(*).
	AggCountRows AggFunc = iota + 1
	// AggCount is COUNT(expr): non-NULL inputs only.
	AggCount
	// AggSum is SUM(expr) over BIGINT or DOUBLE inputs.
	AggSum
	// AggAvg is AVG(expr), maintained as a (count, sum) pair so it is
	// escrow-able like SUM.
	AggAvg
	// AggMin is MIN(expr). Not escrow-able (deletes need recomputation).
	AggMin
	// AggMax is MAX(expr). Not escrow-able (deletes need recomputation).
	AggMax
)

// String names the function.
func (f AggFunc) String() string {
	switch f {
	case AggCountRows:
		return "COUNT(*)"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// Escrowable reports whether the function commutes under concurrent signed
// deltas — the property escrow locking exploits. SUM and COUNT commute;
// MIN/MAX do not (deleting the current extremum needs a group recompute), so
// their maintenance falls back to X locks (DESIGN.md §5).
func (f AggFunc) Escrowable() bool {
	return f == AggCountRows || f == AggCount || f == AggSum || f == AggAvg
}

// AggSpec is one aggregate column of a view: Func applied to Arg evaluated
// over each source row. Arg is ignored (may be nil) for AggCountRows.
// Name, when set, is the output column's name in the view schema — required
// for views stacked on this one to reference the column; the catalog
// synthesizes one (e.g. "sum_amount") when left empty.
type AggSpec struct {
	Func AggFunc
	Arg  Expr
	Name string
}

// String renders the spec.
func (s AggSpec) String() string {
	if s.Func == AggCountRows {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", s.Func, s.Arg)
}

// Accumulator folds rows into one aggregate value; it implements the
// recompute-from-scratch oracle used by queries without a view, by deferred
// maintenance, and by the consistency checker.
type Accumulator struct {
	spec    AggSpec
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	anyRow  bool
	extreme record.Value // MIN/MAX running value
}

// NewAccumulator returns an empty accumulator for spec.
func NewAccumulator(spec AggSpec) *Accumulator {
	return &Accumulator{spec: spec}
}

// Add folds one source row into the aggregate.
func (a *Accumulator) Add(row record.Row) error {
	if a.spec.Func == AggCountRows {
		a.count++
		return nil
	}
	v, err := a.spec.Arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	switch a.spec.Func {
	case AggCount:
		a.count++
	case AggSum, AggAvg:
		switch v.Kind() {
		case record.KindInt64:
			a.sumI += v.AsInt()
		case record.KindFloat64:
			a.sumF += v.AsFloat()
			a.isFloat = true
		default:
			return fmt.Errorf("%w: %s over %s", ErrTypeMismatch, a.spec.Func, v.Kind())
		}
		a.count++
		a.anyRow = true
	case AggMin:
		if !a.anyRow || record.Compare(v, a.extreme) < 0 {
			a.extreme = v
		}
		a.anyRow = true
	case AggMax:
		if !a.anyRow || record.Compare(v, a.extreme) > 0 {
			a.extreme = v
		}
		a.anyRow = true
	default:
		return fmt.Errorf("expr: unknown aggregate %d", a.spec.Func)
	}
	return nil
}

// Result returns the aggregate value: 0 for COUNT over no rows, NULL for
// SUM/MIN/MAX over no rows.
func (a *Accumulator) Result() record.Value {
	switch a.spec.Func {
	case AggCountRows, AggCount:
		return record.Int(a.count)
	case AggSum:
		if !a.anyRow {
			return record.Null()
		}
		if a.isFloat {
			return record.Float(a.sumF + float64(a.sumI))
		}
		return record.Int(a.sumI)
	case AggAvg:
		if !a.anyRow || a.count == 0 {
			return record.Null()
		}
		return record.Float((a.sumF + float64(a.sumI)) / float64(a.count))
	default:
		if !a.anyRow {
			return record.Null()
		}
		return a.extreme
	}
}
