package expr

import (
	"testing"

	"repro/internal/record"
)

// FuzzUnmarshal: arbitrary bytes must never panic the expression decoder,
// and any expression that decodes must be marshalable, re-decodable, and
// behaviorally identical.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Expr{
		Col(0),
		ConstInt(42),
		And(Gt(Col(0), ConstInt(5)), IsNull(Col(2))),
		Div(Mul(Col(1), ConstFloat(2.5)), Sub(Col(0), ConstInt(1))),
		Not(Eq(ConstStr("x"), Col(3))),
	}
	for _, e := range seeds {
		f.Add(Marshal(e))
	}
	f.Add([]byte{})
	f.Add([]byte{tagBinary, 99})
	sample := record.Row{record.Int(7), record.Float(1.5), record.Null(), record.Str("s")}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Unmarshal(data)
		if err != nil || e == nil {
			return
		}
		again, err := Unmarshal(Marshal(e))
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.String() != e.String() {
			t.Fatalf("round trip changed %s to %s", e, again)
		}
		v1, err1 := e.Eval(sample)
		v2, err2 := again.Eval(sample)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("eval divergence: %v vs %v", err1, err2)
		}
		if err1 == nil && record.Compare(v1, v2) != 0 {
			t.Fatalf("eval results differ: %v vs %v", v1, v2)
		}
	})
}
