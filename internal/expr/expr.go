// Package expr implements scalar expressions and predicates over rows, plus
// the aggregate-function specs used by indexed views. Expressions serialize
// to bytes so view definitions survive in the catalog across restarts.
//
// NULL handling is SQL-flavored but simplified: any NULL operand makes the
// result NULL, and EvalBool treats a NULL predicate as false.
package expr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/record"
)

// Expr is a scalar expression evaluated against a row.
type Expr interface {
	// Eval computes the expression over row.
	Eval(row record.Row) (record.Value, error)
	// String renders the expression for diagnostics.
	String() string
	marshal(dst []byte) []byte
}

// Errors returned by evaluation.
var (
	// ErrColumnRange reports a column reference past the end of the row.
	ErrColumnRange = errors.New("expr: column index out of range")
	// ErrTypeMismatch reports operands of incompatible kinds.
	ErrTypeMismatch = errors.New("expr: type mismatch")
	// ErrCorrupt reports an undecodable serialized expression.
	ErrCorrupt = errors.New("expr: corrupt serialized expression")
)

// op identifies a binary or unary operator.
type op uint8

const (
	opAdd op = iota + 1
	opSub
	opMul
	opDiv
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opAnd
	opOr
	opNot
	opNeg
	opIsNull
)

var opNames = map[op]string{
	opAdd: "+", opSub: "-", opMul: "*", opDiv: "/",
	opEq: "=", opNe: "<>", opLt: "<", opLe: "<=", opGt: ">", opGe: ">=",
	opAnd: "AND", opOr: "OR", opNot: "NOT", opNeg: "-", opIsNull: "IS NULL",
}

// colRef references the i-th column of the input row.
type colRef struct{ idx int }

// Col returns a reference to column idx of the input row.
func Col(idx int) Expr { return colRef{idx: idx} }

// namedCol references a source column by name. It must be resolved to a
// positional reference (ResolveColumns) before evaluation — the catalog does
// this at CREATE VIEW time, so an unresolved reference reaching Eval means
// the definition bypassed DDL validation.
type namedCol struct{ name string }

// NamedCol returns a reference to the source column with the given name.
// View definitions using NamedCol are resolved against the source schema by
// the catalog when the view is created.
func NamedCol(name string) Expr { return namedCol{name: name} }

// ErrUnresolved reports a named column reference that was never resolved to
// a positional one.
var ErrUnresolved = errors.New("expr: unresolved named column")

func (c namedCol) Eval(record.Row) (record.Value, error) {
	return record.Value{}, fmt.Errorf("%w: %q", ErrUnresolved, c.name)
}

func (c namedCol) String() string { return c.name }

// ResolveColumns rewrites every named column reference in e to a positional
// one using resolve; positional references pass through untouched. A nil e
// resolves to nil.
func ResolveColumns(e Expr, resolve func(name string) (int, error)) (Expr, error) {
	switch t := e.(type) {
	case nil:
		return nil, nil
	case namedCol:
		idx, err := resolve(t.name)
		if err != nil {
			return nil, err
		}
		return colRef{idx: idx}, nil
	case binOp:
		l, err := ResolveColumns(t.l, resolve)
		if err != nil {
			return nil, err
		}
		r, err := ResolveColumns(t.r, resolve)
		if err != nil {
			return nil, err
		}
		return binOp{op: t.op, l: l, r: r}, nil
	case unary:
		x, err := ResolveColumns(t.x, resolve)
		if err != nil {
			return nil, err
		}
		return unary{op: t.op, x: x}, nil
	default:
		return e, nil
	}
}

func (c colRef) Eval(row record.Row) (record.Value, error) {
	if c.idx < 0 || c.idx >= len(row) {
		return record.Value{}, fmt.Errorf("%w: col %d of %d", ErrColumnRange, c.idx, len(row))
	}
	return row[c.idx], nil
}

func (c colRef) String() string { return fmt.Sprintf("col%d", c.idx) }

// ColIndex reports the column index when e is a plain (resolved) column
// reference, so callers holding the source schema can render it by name.
func ColIndex(e Expr) (int, bool) {
	c, ok := e.(colRef)
	return c.idx, ok
}

// constant is a literal value.
type constant struct{ v record.Value }

// Const returns a literal expression.
func Const(v record.Value) Expr { return constant{v: v} }

// ConstInt returns a BIGINT literal.
func ConstInt(v int64) Expr { return constant{v: record.Int(v)} }

// ConstFloat returns a DOUBLE literal.
func ConstFloat(v float64) Expr { return constant{v: record.Float(v)} }

// ConstStr returns a VARCHAR literal.
func ConstStr(v string) Expr { return constant{v: record.Str(v)} }

func (c constant) Eval(record.Row) (record.Value, error) { return c.v, nil }
func (c constant) String() string                        { return c.v.String() }

// binary applies op to two operands.
type binOp struct {
	op   op
	l, r Expr
}

// Arithmetic constructors.
func Add(l, r Expr) Expr { return binOp{op: opAdd, l: l, r: r} }
func Sub(l, r Expr) Expr { return binOp{op: opSub, l: l, r: r} }
func Mul(l, r Expr) Expr { return binOp{op: opMul, l: l, r: r} }
func Div(l, r Expr) Expr { return binOp{op: opDiv, l: l, r: r} }

// Comparison constructors.
func Eq(l, r Expr) Expr { return binOp{op: opEq, l: l, r: r} }
func Ne(l, r Expr) Expr { return binOp{op: opNe, l: l, r: r} }
func Lt(l, r Expr) Expr { return binOp{op: opLt, l: l, r: r} }
func Le(l, r Expr) Expr { return binOp{op: opLe, l: l, r: r} }
func Gt(l, r Expr) Expr { return binOp{op: opGt, l: l, r: r} }
func Ge(l, r Expr) Expr { return binOp{op: opGe, l: l, r: r} }

// Logical constructors.
func And(l, r Expr) Expr { return binOp{op: opAnd, l: l, r: r} }
func Or(l, r Expr) Expr  { return binOp{op: opOr, l: l, r: r} }

func (b binOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.l, opNames[b.op], b.r)
}

func (b binOp) Eval(row record.Row) (record.Value, error) {
	lv, err := b.l.Eval(row)
	if err != nil {
		return record.Value{}, err
	}
	rv, err := b.r.Eval(row)
	if err != nil {
		return record.Value{}, err
	}
	if lv.IsNull() || rv.IsNull() {
		return record.Null(), nil
	}
	switch b.op {
	case opAdd, opSub, opMul, opDiv:
		return evalArith(b.op, lv, rv)
	case opEq, opNe, opLt, opLe, opGt, opGe:
		return evalCompare(b.op, lv, rv)
	case opAnd, opOr:
		if lv.Kind() != record.KindBool || rv.Kind() != record.KindBool {
			return record.Value{}, fmt.Errorf("%w: %s needs booleans", ErrTypeMismatch, opNames[b.op])
		}
		if b.op == opAnd {
			return record.Bool(lv.AsBool() && rv.AsBool()), nil
		}
		return record.Bool(lv.AsBool() || rv.AsBool()), nil
	default:
		return record.Value{}, fmt.Errorf("expr: invalid binary op %d", b.op)
	}
}

func evalArith(o op, l, r record.Value) (record.Value, error) {
	// String concatenation via +.
	if o == opAdd && l.Kind() == record.KindString && r.Kind() == record.KindString {
		return record.Str(l.AsString() + r.AsString()), nil
	}
	if l.Kind() == record.KindInt64 && r.Kind() == record.KindInt64 {
		a, b := l.AsInt(), r.AsInt()
		switch o {
		case opAdd:
			return record.Int(a + b), nil
		case opSub:
			return record.Int(a - b), nil
		case opMul:
			return record.Int(a * b), nil
		case opDiv:
			if b == 0 {
				return record.Null(), nil
			}
			return record.Int(a / b), nil
		}
	}
	a, aok := l.Numeric()
	b, bok := r.Numeric()
	if !aok || !bok {
		return record.Value{}, fmt.Errorf("%w: %s on %s and %s", ErrTypeMismatch, opNames[o], l.Kind(), r.Kind())
	}
	switch o {
	case opAdd:
		return record.Float(a + b), nil
	case opSub:
		return record.Float(a - b), nil
	case opMul:
		return record.Float(a * b), nil
	default:
		if b == 0 {
			return record.Null(), nil
		}
		return record.Float(a / b), nil
	}
}

func evalCompare(o op, l, r record.Value) (record.Value, error) {
	var c int
	if l.Kind() == r.Kind() {
		c = record.Compare(l, r)
	} else {
		a, aok := l.Numeric()
		b, bok := r.Numeric()
		if !aok || !bok {
			return record.Value{}, fmt.Errorf("%w: compare %s with %s", ErrTypeMismatch, l.Kind(), r.Kind())
		}
		switch {
		case a < b:
			c = -1
		case a > b:
			c = 1
		}
	}
	var out bool
	switch o {
	case opEq:
		out = c == 0
	case opNe:
		out = c != 0
	case opLt:
		out = c < 0
	case opLe:
		out = c <= 0
	case opGt:
		out = c > 0
	case opGe:
		out = c >= 0
	}
	return record.Bool(out), nil
}

// unary applies op to one operand.
type unary struct {
	op op
	x  Expr
}

// Not negates a boolean expression.
func Not(x Expr) Expr { return unary{op: opNot, x: x} }

// Neg negates a numeric expression.
func Neg(x Expr) Expr { return unary{op: opNeg, x: x} }

// IsNull tests for NULL (and is the only expression that never returns NULL).
func IsNull(x Expr) Expr { return unary{op: opIsNull, x: x} }

func (u unary) String() string {
	if u.op == opIsNull {
		return fmt.Sprintf("(%s IS NULL)", u.x)
	}
	return fmt.Sprintf("(%s %s)", opNames[u.op], u.x)
}

func (u unary) Eval(row record.Row) (record.Value, error) {
	v, err := u.x.Eval(row)
	if err != nil {
		return record.Value{}, err
	}
	switch u.op {
	case opIsNull:
		return record.Bool(v.IsNull()), nil
	case opNot:
		if v.IsNull() {
			return record.Null(), nil
		}
		if v.Kind() != record.KindBool {
			return record.Value{}, fmt.Errorf("%w: NOT on %s", ErrTypeMismatch, v.Kind())
		}
		return record.Bool(!v.AsBool()), nil
	case opNeg:
		if v.IsNull() {
			return record.Null(), nil
		}
		switch v.Kind() {
		case record.KindInt64:
			return record.Int(-v.AsInt()), nil
		case record.KindFloat64:
			return record.Float(-v.AsFloat()), nil
		}
		return record.Value{}, fmt.Errorf("%w: negate %s", ErrTypeMismatch, v.Kind())
	default:
		return record.Value{}, fmt.Errorf("expr: invalid unary op %d", u.op)
	}
}

// EvalBool evaluates a predicate; NULL counts as false.
func EvalBool(e Expr, row record.Row) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != record.KindBool {
		return false, fmt.Errorf("%w: predicate is %s, not BOOL", ErrTypeMismatch, v.Kind())
	}
	return v.AsBool(), nil
}

// Serialization tags.
const (
	tagCol    byte = 1
	tagConst  byte = 2
	tagBinary byte = 3
	tagUnary  byte = 4
	tagNamed  byte = 5
)

// Marshal serializes an expression; nil encodes as an empty slice.
func Marshal(e Expr) []byte {
	if e == nil {
		return nil
	}
	return e.marshal(nil)
}

func (c colRef) marshal(dst []byte) []byte {
	dst = append(dst, tagCol)
	return binary.AppendUvarint(dst, uint64(c.idx))
}

func (c namedCol) marshal(dst []byte) []byte {
	dst = append(dst, tagNamed)
	dst = binary.AppendUvarint(dst, uint64(len(c.name)))
	return append(dst, c.name...)
}

func (c constant) marshal(dst []byte) []byte {
	dst = append(dst, tagConst)
	enc := record.EncodeRow(record.Row{c.v})
	dst = binary.AppendUvarint(dst, uint64(len(enc)))
	return append(dst, enc...)
}

func (b binOp) marshal(dst []byte) []byte {
	dst = append(dst, tagBinary, byte(b.op))
	dst = b.l.marshal(dst)
	return b.r.marshal(dst)
}

func (u unary) marshal(dst []byte) []byte {
	dst = append(dst, tagUnary, byte(u.op))
	return u.x.marshal(dst)
}

// Unmarshal parses a serialized expression; an empty input yields nil.
func Unmarshal(buf []byte) (Expr, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	e, rest, err := unmarshal(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return e, nil
}

func unmarshal(buf []byte) (Expr, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, ErrCorrupt
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case tagCol:
		idx, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, nil, ErrCorrupt
		}
		return colRef{idx: int(idx)}, buf[n:], nil
	case tagNamed:
		n, used := binary.Uvarint(buf)
		if used <= 0 || n > uint64(len(buf)-used) {
			return nil, nil, ErrCorrupt
		}
		return namedCol{name: string(buf[used : used+int(n)])}, buf[used+int(n):], nil
	case tagConst:
		n, used := binary.Uvarint(buf)
		if used <= 0 || n > uint64(len(buf)-used) {
			return nil, nil, ErrCorrupt
		}
		row, err := record.DecodeRow(buf[used : used+int(n)])
		if err != nil || len(row) != 1 {
			return nil, nil, ErrCorrupt
		}
		return constant{v: row[0]}, buf[used+int(n):], nil
	case tagBinary:
		if len(buf) == 0 {
			return nil, nil, ErrCorrupt
		}
		o := op(buf[0])
		if opNames[o] == "" || o == opNot || o == opNeg || o == opIsNull {
			return nil, nil, ErrCorrupt
		}
		l, rest, err := unmarshal(buf[1:])
		if err != nil {
			return nil, nil, err
		}
		r, rest, err := unmarshal(rest)
		if err != nil {
			return nil, nil, err
		}
		return newBinOp(o, l, r), rest, nil
	case tagUnary:
		if len(buf) == 0 {
			return nil, nil, ErrCorrupt
		}
		o := op(buf[0])
		if o != opNot && o != opNeg && o != opIsNull {
			return nil, nil, ErrCorrupt
		}
		x, rest, err := unmarshal(buf[1:])
		if err != nil {
			return nil, nil, err
		}
		return unary{op: o, x: x}, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: tag %d", ErrCorrupt, tag)
	}
}

func newBinOp(o op, l, r Expr) Expr { return binOp{op: o, l: l, r: r} }

// Describe joins rendered expressions for catalog listings.
func Describe(exprs []Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
