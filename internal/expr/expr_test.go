package expr

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

var row = record.Row{record.Int(10), record.Str("abc"), record.Float(2.5), record.Bool(true), record.Null()}

func eval(t *testing.T, e Expr) record.Value {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	return v
}

func TestColAndConst(t *testing.T) {
	if v := eval(t, Col(0)); v.AsInt() != 10 {
		t.Fatalf("col0 = %v", v)
	}
	if v := eval(t, ConstStr("x")); v.AsString() != "x" {
		t.Fatalf("const = %v", v)
	}
	if _, err := Col(9).Eval(row); !errors.Is(err, ErrColumnRange) {
		t.Fatalf("out of range err = %v", err)
	}
	if _, err := Col(-1).Eval(row); !errors.Is(err, ErrColumnRange) {
		t.Fatalf("negative col err = %v", err)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want record.Value
	}{
		{Add(Col(0), ConstInt(5)), record.Int(15)},
		{Sub(Col(0), ConstInt(3)), record.Int(7)},
		{Mul(Col(0), ConstInt(4)), record.Int(40)},
		{Div(Col(0), ConstInt(3)), record.Int(3)},
		{Div(Col(0), ConstInt(0)), record.Null()},
		{Add(Col(0), Col(2)), record.Float(12.5)},
		{Mul(Col(2), ConstFloat(2)), record.Float(5)},
		{Div(ConstFloat(5), ConstFloat(0)), record.Null()},
		{Add(Col(1), ConstStr("!")), record.Str("abc!")},
		{Neg(Col(0)), record.Int(-10)},
		{Neg(Col(2)), record.Float(-2.5)},
		{Add(Col(4), ConstInt(1)), record.Null()}, // NULL propagates
	}
	for _, c := range cases {
		got := eval(t, c.e)
		if record.Compare(got, c.want) != 0 {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := Add(Col(1), ConstInt(1)).Eval(row); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("string+int err = %v", err)
	}
	if _, err := Neg(Col(1)).Eval(row); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("neg string err = %v", err)
	}
}

func TestComparisons(t *testing.T) {
	trueCases := []Expr{
		Eq(Col(0), ConstInt(10)),
		Ne(Col(0), ConstInt(9)),
		Lt(Col(0), ConstInt(11)),
		Le(Col(0), ConstInt(10)),
		Gt(Col(0), ConstInt(9)),
		Ge(Col(0), ConstInt(10)),
		Eq(Col(1), ConstStr("abc")),
		Lt(Col(2), ConstInt(3)), // mixed numeric compare
		Gt(ConstInt(3), Col(2)),
	}
	for _, e := range trueCases {
		if v := eval(t, e); !v.AsBool() {
			t.Errorf("%s = false, want true", e)
		}
	}
	if v := eval(t, Eq(Col(4), ConstInt(1))); !v.IsNull() {
		t.Errorf("NULL compare = %v", v)
	}
	if _, err := Lt(Col(1), ConstInt(1)).Eval(row); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("string<int err = %v", err)
	}
}

func TestLogic(t *testing.T) {
	tr, fa := Const(record.Bool(true)), Const(record.Bool(false))
	if !eval(t, And(tr, tr)).AsBool() || eval(t, And(tr, fa)).AsBool() {
		t.Fatal("AND wrong")
	}
	if !eval(t, Or(fa, tr)).AsBool() || eval(t, Or(fa, fa)).AsBool() {
		t.Fatal("OR wrong")
	}
	if eval(t, Not(tr)).AsBool() {
		t.Fatal("NOT wrong")
	}
	if !eval(t, IsNull(Col(4))).AsBool() || eval(t, IsNull(Col(0))).AsBool() {
		t.Fatal("IS NULL wrong")
	}
	if v := eval(t, Not(Col(4))); !v.IsNull() {
		t.Fatal("NOT NULL should be NULL")
	}
	if _, err := And(Col(0), tr).Eval(row); !errors.Is(err, ErrTypeMismatch) {
		t.Fatal("AND over int should fail")
	}
}

func TestEvalBool(t *testing.T) {
	ok, err := EvalBool(Gt(Col(0), ConstInt(5)), row)
	if err != nil || !ok {
		t.Fatalf("EvalBool = %v, %v", ok, err)
	}
	ok, err = EvalBool(Eq(Col(4), ConstInt(1)), row) // NULL -> false
	if err != nil || ok {
		t.Fatalf("NULL predicate = %v, %v", ok, err)
	}
	ok, err = EvalBool(nil, row) // nil predicate -> true
	if err != nil || !ok {
		t.Fatalf("nil predicate = %v, %v", ok, err)
	}
	if _, err := EvalBool(Col(0), row); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("non-bool predicate err = %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	e := And(Gt(Col(0), ConstInt(5)), IsNull(Col(4)))
	want := "((col0 > 5) AND (col4 IS NULL))"
	if e.String() != want {
		t.Fatalf("String = %q, want %q", e.String(), want)
	}
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return Col(rng.Intn(5))
		case 1:
			return ConstInt(int64(rng.Intn(100) - 50))
		case 2:
			return ConstFloat(float64(rng.Intn(100)) / 4)
		default:
			return ConstStr(string(rune('a' + rng.Intn(26))))
		}
	}
	l, r := randomExpr(rng, depth-1), randomExpr(rng, depth-1)
	switch rng.Intn(13) {
	case 0:
		return Add(l, r)
	case 1:
		return Sub(l, r)
	case 2:
		return Mul(l, r)
	case 3:
		return Div(l, r)
	case 4:
		return Eq(l, r)
	case 5:
		return Ne(l, r)
	case 6:
		return Lt(l, r)
	case 7:
		return Le(l, r)
	case 8:
		return Gt(l, r)
	case 9:
		return Ge(l, r)
	case 10:
		return And(l, r)
	case 11:
		return Not(l)
	default:
		return IsNull(l)
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary expression trees, both
// structurally and behaviorally.
func TestQuickMarshalRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 800,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			args[0] = reflect.ValueOf(randomExpr(rng, 4))
		},
	}
	f := func(e Expr) bool {
		dec, err := Unmarshal(Marshal(e))
		if err != nil {
			return false
		}
		if dec.String() != e.String() {
			return false
		}
		v1, err1 := e.Eval(row)
		v2, err2 := dec.Eval(row)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || record.Compare(v1, v2) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalNil(t *testing.T) {
	if b := Marshal(nil); len(b) != 0 {
		t.Fatal("nil should marshal empty")
	}
	e, err := Unmarshal(nil)
	if err != nil || e != nil {
		t.Fatal("empty should unmarshal to nil")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good := Marshal(And(Eq(Col(1), ConstStr("abc")), Gt(Col(0), ConstInt(3))))
	for i := 1; i < len(good); i++ {
		if _, err := Unmarshal(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Error("bad tag accepted")
	}
	if _, err := Unmarshal(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unary op in binary slot and vice versa.
	if _, err := Unmarshal([]byte{tagBinary, byte(opNot), tagCol, 0, tagCol, 1}); err == nil {
		t.Error("unary op as binary accepted")
	}
	if _, err := Unmarshal([]byte{tagUnary, byte(opAdd), tagCol, 0}); err == nil {
		t.Error("binary op as unary accepted")
	}
}

func TestAggEscrowable(t *testing.T) {
	if !AggCountRows.Escrowable() || !AggCount.Escrowable() || !AggSum.Escrowable() {
		t.Fatal("COUNT/SUM must be escrowable")
	}
	if AggMin.Escrowable() || AggMax.Escrowable() {
		t.Fatal("MIN/MAX must not be escrowable")
	}
}

func TestAccumulators(t *testing.T) {
	rows := []record.Row{
		{record.Int(5), record.Float(1.5)},
		{record.Int(-2), record.Float(2.0)},
		{record.Null(), record.Float(0.5)},
		{record.Int(7), record.Null()},
	}
	cases := []struct {
		spec AggSpec
		want record.Value
	}{
		{AggSpec{Func: AggCountRows}, record.Int(4)},
		{AggSpec{Func: AggCount, Arg: Col(0)}, record.Int(3)},
		{AggSpec{Func: AggCount, Arg: Col(1)}, record.Int(3)},
		{AggSpec{Func: AggSum, Arg: Col(0)}, record.Int(10)},
		{AggSpec{Func: AggSum, Arg: Col(1)}, record.Float(4.0)},
		{AggSpec{Func: AggMin, Arg: Col(0)}, record.Int(-2)},
		{AggSpec{Func: AggMax, Arg: Col(0)}, record.Int(7)},
		{AggSpec{Func: AggMax, Arg: Col(1)}, record.Float(2.0)},
	}
	for _, c := range cases {
		acc := NewAccumulator(c.spec)
		for _, r := range rows {
			if err := acc.Add(r); err != nil {
				t.Fatalf("%s: %v", c.spec, err)
			}
		}
		if got := acc.Result(); record.Compare(got, c.want) != 0 {
			t.Errorf("%s = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestAccumulatorEmptyGroups(t *testing.T) {
	if v := NewAccumulator(AggSpec{Func: AggCountRows}).Result(); v.AsInt() != 0 {
		t.Fatal("empty COUNT(*) != 0")
	}
	if v := NewAccumulator(AggSpec{Func: AggSum, Arg: Col(0)}).Result(); !v.IsNull() {
		t.Fatal("empty SUM not NULL")
	}
	if v := NewAccumulator(AggSpec{Func: AggMin, Arg: Col(0)}).Result(); !v.IsNull() {
		t.Fatal("empty MIN not NULL")
	}
}

func TestAccumulatorSumTypeError(t *testing.T) {
	acc := NewAccumulator(AggSpec{Func: AggSum, Arg: Col(0)})
	if err := acc.Add(record.Row{record.Str("no")}); err == nil {
		t.Fatal("SUM over string accepted")
	}
}

func BenchmarkEvalPredicate(b *testing.B) {
	e := And(Gt(Col(0), ConstInt(5)), Lt(Col(2), ConstFloat(10)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EvalBool(e, row)
	}
}
