package txn

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/id"
	"repro/internal/wal"
)

func TestBeginCommitAbort(t *testing.T) {
	m := NewManager(1)
	t1 := m.Begin(false, ReadCommitted)
	t2 := m.Begin(true, Serializable)
	if t1.ID != 1 || t2.ID != 2 {
		t.Fatalf("IDs = %d, %d", t1.ID, t2.ID)
	}
	if !t2.Sys || t1.Sys {
		t.Fatal("Sys flags wrong")
	}
	if got := m.ActiveIDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ActiveIDs = %v", got)
	}
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if t1.State() != StateCommitted || t1.Active() {
		t.Fatal("t1 state wrong")
	}
	if err := m.Abort(t2); err != nil {
		t.Fatal(err)
	}
	if t2.State() != StateAborted {
		t.Fatal("t2 state wrong")
	}
	if m.ActiveCount() != 0 {
		t.Fatal("active set not empty")
	}
	// Double finish fails.
	if err := m.Commit(t1); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit err = %v", err)
	}
	if err := m.Abort(t1); !errors.Is(err, ErrNotActive) {
		t.Fatalf("abort after commit err = %v", err)
	}
}

func TestRecordOpAndOps(t *testing.T) {
	m := NewManager(1)
	tx := m.Begin(false, RepeatableRead)
	r1 := &wal.Record{LSN: 1, Type: wal.TInsert}
	r2 := &wal.Record{LSN: 2, Type: wal.TDelete}
	tx.RecordOp(r1)
	tx.RecordOp(r2)
	ops := tx.Ops()
	if len(ops) != 2 || ops[0] != r1 || ops[1] != r2 {
		t.Fatalf("Ops = %v", ops)
	}
	m.Commit(tx)
	if err := tx.RecordOp(r1); !errors.Is(err, ErrNotActive) {
		t.Fatalf("RecordOp after commit err = %v", err)
	}
}

func TestSavepoints(t *testing.T) {
	m := NewManager(1)
	tx := m.Begin(false, ReadCommitted)
	r1 := &wal.Record{LSN: 1}
	r2 := &wal.Record{LSN: 2}
	r3 := &wal.Record{LSN: 3}
	tx.RecordOp(r1)
	sp := tx.Savepoint()
	tx.RecordOp(r2)
	tx.RecordOp(r3)
	undo := tx.OpsSince(sp)
	if len(undo) != 2 || undo[0] != r3 || undo[1] != r2 {
		t.Fatalf("OpsSince = %v", undo)
	}
	if got := tx.Ops(); len(got) != 1 || got[0] != r1 {
		t.Fatalf("chain after partial rollback = %v", got)
	}
	// Out-of-range savepoints yield nothing.
	if got := tx.OpsSince(Savepoint(99)); got != nil {
		t.Fatalf("bad savepoint = %v", got)
	}
	if got := tx.OpsSince(Savepoint(-1)); got != nil {
		t.Fatalf("negative savepoint = %v", got)
	}
}

func TestObserveID(t *testing.T) {
	m := NewManager(1)
	m.ObserveID(100)
	tx := m.Begin(false, ReadCommitted)
	if tx.ID != 101 {
		t.Fatalf("ID after ObserveID = %d", tx.ID)
	}
	m.ObserveID(50) // lower observation must not move the allocator back
	tx2 := m.Begin(false, ReadCommitted)
	if tx2.ID != 102 {
		t.Fatalf("ID after low ObserveID = %d", tx2.ID)
	}
}

func TestNewManagerZeroFirstID(t *testing.T) {
	m := NewManager(0)
	if tx := m.Begin(false, ReadCommitted); tx.ID != 1 {
		t.Fatalf("first ID = %d", tx.ID)
	}
}

func TestConcurrentBegin(t *testing.T) {
	m := NewManager(1)
	const goroutines = 16
	const per = 200
	var wg sync.WaitGroup
	ids := make(chan id.Txn, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := m.Begin(false, ReadCommitted)
				ids <- tx.ID
				m.Commit(tx)
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[id.Txn]bool{}
	for tid := range ids {
		if seen[tid] {
			t.Fatalf("duplicate txn ID %d", tid)
		}
		seen[tid] = true
	}
	if len(seen) != goroutines*per || m.ActiveCount() != 0 {
		t.Fatalf("ids=%d active=%d", len(seen), m.ActiveCount())
	}
}

func TestStateStrings(t *testing.T) {
	if StateActive.String() != "active" || StateCommitted.String() != "committed" ||
		StateAborted.String() != "aborted" {
		t.Fatal("state strings")
	}
	if ReadCommitted.String() != "read-committed" || Serializable.String() != "serializable" ||
		RepeatableRead.String() != "repeatable-read" {
		t.Fatal("level strings")
	}
}
