package txn

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
)

// ErrViewWatermarkDropped reports that the deferred view a waiter was blocked
// on was dropped before its watermark reached the requested timestamp.
var ErrViewWatermarkDropped = errors.New("txn: view watermark dropped")

// Oracle is the engine's commit-timestamp allocator and snapshot registry —
// the timestamp side of the multi-version read path (DESIGN.md §8).
//
// Committers allocate a monotonic commit timestamp after their commit record
// is durable and finish it once every version they wrote is stamped; the
// oracle publishes a *watermark*: the highest timestamp ts such that every
// commit with timestamp <= ts has fully stamped its versions. Snapshot
// readers pin the watermark at Begin, so a reader never observes a commit
// whose versions are still being written — visibility is a single integer
// comparison, with no locks and no blocking of writers.
//
// The registry of active snapshots supplies the version-chain pruner's
// horizon: the oldest pinned read timestamp (or the watermark when no
// snapshot is active). Versions at or below the horizon can be folded into
// the chain base without changing what any live reader resolves.
type Oracle struct {
	mu   sync.Mutex
	next uint64 // last allocated commit timestamp
	// inflight holds allocated-but-unfinished commit timestamps. It is
	// bounded by the number of concurrently committing transactions, so the
	// min scan in finish stays cheap.
	inflight map[uint64]struct{}

	// watermark is published atomically so ReadTS never takes mu.
	watermark atomic.Uint64

	snapMu    sync.Mutex
	snaps     map[uint64]snapEntry
	nextSnap  uint64
	snapCount atomic.Int64
	began     atomic.Int64

	// viewMu guards the per-view applied watermarks of deferred views
	// (DESIGN.md §9): the highest commit timestamp whose effects the
	// background applier has folded into each view. viewWake is closed and
	// replaced whenever any view watermark advances, so waiters poll by
	// generation instead of spinning.
	viewMu   sync.Mutex
	viewWM   map[id.Tree]uint64
	viewWake chan struct{}
	// viewApply holds, per deferred view, the commit timestamp of the last
	// applier fold that wrote the view's tree. Together with viewWM it forms
	// the scrubber's apply pair (ViewApplied): the view's stored contents at
	// any snapshot timestamp >= viewApply — and before the next fold — equal
	// a recompute over the view's source at viewWM.
	viewApply map[id.Tree]uint64
	// viewDropped records trees whose watermark was dropped, so a waiter that
	// re-observes after DropViewWatermark distinguishes "dropped" from "not
	// yet published" and gives up instead of blocking forever. Tree IDs are
	// never reused, so the set only grows — bounded by DDL volume, not load.
	viewDropped map[id.Tree]struct{}
}

type snapEntry struct {
	ts      uint64
	started time.Time
}

// NewOracle returns an oracle whose first commit timestamp is 1.
func NewOracle() *Oracle {
	return &Oracle{
		inflight:    make(map[uint64]struct{}),
		snaps:       make(map[uint64]snapEntry),
		viewWM:      make(map[id.Tree]uint64),
		viewApply:   make(map[id.Tree]uint64),
		viewWake:    make(chan struct{}),
		viewDropped: make(map[id.Tree]struct{}),
	}
}

// AllocateCommitTS returns the next commit timestamp and marks it in flight:
// the watermark will not advance past it until FinishCommit. Callers must
// allocate only once their commit is decided (the commit record is durable)
// and must call FinishCommit after stamping every version — the window in
// between is the only time the watermark is held back.
func (o *Oracle) AllocateCommitTS() uint64 {
	o.mu.Lock()
	o.next++
	ts := o.next
	o.inflight[ts] = struct{}{}
	o.mu.Unlock()
	return ts
}

// FinishCommit retires an in-flight commit timestamp and republishes the
// watermark: the timestamp just below the oldest still-in-flight commit, or
// the allocator head when none is.
func (o *Oracle) FinishCommit(ts uint64) {
	o.mu.Lock()
	delete(o.inflight, ts)
	wm := o.next
	for f := range o.inflight {
		if f-1 < wm {
			wm = f - 1
		}
	}
	o.watermark.Store(wm)
	o.mu.Unlock()
}

// ReadTS returns the current watermark — the timestamp a new snapshot would
// pin. Lock-free.
func (o *Oracle) ReadTS() uint64 { return o.watermark.Load() }

// BeginSnapshot pins the current watermark as a read timestamp and registers
// it as active, returning the timestamp and a handle for EndSnapshot. The
// watermark is read under the registry lock so a concurrently computed prune
// horizon can never pass a snapshot that is still registering.
func (o *Oracle) BeginSnapshot() (ts, handle uint64) {
	o.snapMu.Lock()
	ts = o.watermark.Load()
	o.nextSnap++
	handle = o.nextSnap
	o.snaps[handle] = snapEntry{ts: ts, started: time.Now()}
	o.snapMu.Unlock()
	o.snapCount.Add(1)
	o.began.Add(1)
	return ts, handle
}

// BeginSnapshotAt pins ts — a timestamp in the past, typically a deferred
// view's watermark — as an active snapshot, provided ts is still at or above
// the prune horizon. It returns ok=false when the horizon has already passed
// ts (the versions a reader at ts needs may be folded away); callers retry
// with a fresher timestamp. The horizon is computed under the registry lock,
// so a concurrently computed prune horizon can never pass a successfully
// registered timestamp: the horizon is monotonic, and any in-flight prune
// pass used a horizon at or below the one admitting ts.
func (o *Oracle) BeginSnapshotAt(ts uint64) (handle uint64, ok bool) {
	o.snapMu.Lock()
	if ts < o.pruneHorizonLocked() {
		o.snapMu.Unlock()
		return 0, false
	}
	o.nextSnap++
	handle = o.nextSnap
	o.snaps[handle] = snapEntry{ts: ts, started: time.Now()}
	o.snapMu.Unlock()
	o.snapCount.Add(1)
	o.began.Add(1)
	return handle, true
}

// EndSnapshot retires an active snapshot.
func (o *Oracle) EndSnapshot(handle uint64) {
	o.snapMu.Lock()
	if _, ok := o.snaps[handle]; ok {
		delete(o.snaps, handle)
		o.snapCount.Add(-1)
	}
	o.snapMu.Unlock()
}

// ActiveSnapshots returns the number of registered snapshots.
func (o *Oracle) ActiveSnapshots() int64 { return o.snapCount.Load() }

// SnapshotsBegun returns the cumulative count of snapshots ever pinned.
func (o *Oracle) SnapshotsBegun() int64 { return o.began.Load() }

// OldestSnapshotAge returns how long the oldest active snapshot has been
// pinned, or zero when none is active.
func (o *Oracle) OldestSnapshotAge(now time.Time) time.Duration {
	o.snapMu.Lock()
	defer o.snapMu.Unlock()
	var oldest time.Time
	for _, e := range o.snaps {
		if oldest.IsZero() || e.started.Before(oldest) {
			oldest = e.started
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// PruneHorizon returns the version-chain pruning horizon: the minimum of the
// oldest active snapshot's read timestamp and every deferred view's applied
// watermark, or the commit watermark when neither holds it back. State at or
// below the horizon can be collapsed — every live and future reader resolves
// at a timestamp >= the horizon. Deferred view watermarks participate so the
// scrubber (and any other watermark-timestamp reader) can always pin a
// view's watermark with BeginSnapshotAt: with bounded staleness the applied
// watermark tracks the commit watermark within one applier interval, so the
// extra retention is a few milliseconds of versions.
func (o *Oracle) PruneHorizon() uint64 {
	o.snapMu.Lock()
	defer o.snapMu.Unlock()
	return o.pruneHorizonLocked()
}

// pruneHorizonLocked computes the horizon; the caller holds snapMu. It takes
// viewMu inside snapMu — that order (snapMu, then viewMu) is the lock order
// everywhere the two meet.
func (o *Oracle) pruneHorizonLocked() uint64 {
	h := o.watermark.Load()
	for _, e := range o.snaps {
		if e.ts < h {
			h = e.ts
		}
	}
	o.viewMu.Lock()
	for _, wm := range o.viewWM {
		if wm < h {
			h = wm
		}
	}
	o.viewMu.Unlock()
	return h
}

// AdvanceViewWatermark publishes that every commit with timestamp <= ts has
// been applied to the deferred view, waking any WaitForViewWatermark callers.
// Watermarks are monotonic: a lower ts is a no-op.
func (o *Oracle) AdvanceViewWatermark(tree id.Tree, ts uint64) {
	o.viewMu.Lock()
	if ts > o.viewWM[tree] {
		o.viewWM[tree] = ts
		close(o.viewWake)
		o.viewWake = make(chan struct{})
	}
	o.viewMu.Unlock()
}

// AdvanceViewApplied publishes one applier fold round's outcome for a
// deferred view as an atomic pair: applyTS is the fold transaction's commit
// timestamp (the moment the view's new contents became snapshot-visible) and
// wm the source frontier it applied — every source commit <= wm is now
// folded in. Between this fold and the next one, the view's stored rows at
// any snapshot timestamp >= applyTS equal a recompute over the source at wm.
// Both components are monotonic; a stale pair is a no-op.
func (o *Oracle) AdvanceViewApplied(tree id.Tree, applyTS, wm uint64) {
	o.viewMu.Lock()
	if applyTS > o.viewApply[tree] {
		o.viewApply[tree] = applyTS
	}
	if wm > o.viewWM[tree] {
		o.viewWM[tree] = wm
		close(o.viewWake)
		o.viewWake = make(chan struct{})
	}
	o.viewMu.Unlock()
}

// ViewApplied returns the deferred view's apply pair — the last fold's
// commit timestamp and the applied source watermark — read atomically.
// applyTS is zero when the applier has never folded into the view (a
// freshly created or purely idle view); wm is zero when no watermark has
// been published at all.
func (o *Oracle) ViewApplied(tree id.Tree) (applyTS, wm uint64) {
	o.viewMu.Lock()
	applyTS = o.viewApply[tree]
	wm = o.viewWM[tree]
	o.viewMu.Unlock()
	return applyTS, wm
}

// DropViewWatermark forgets a dropped view's watermark and records the drop,
// waking waiters unconditionally so a wait against the dropped view
// re-observes and returns ErrViewWatermarkDropped — even a waiter that was
// blocked before the view ever published a watermark.
func (o *Oracle) DropViewWatermark(tree id.Tree) {
	o.viewMu.Lock()
	delete(o.viewWM, tree)
	delete(o.viewApply, tree)
	o.viewDropped[tree] = struct{}{}
	close(o.viewWake)
	o.viewWake = make(chan struct{})
	o.viewMu.Unlock()
}

// ViewWatermark returns the deferred view's applied watermark (zero when the
// applier has not yet published one).
func (o *Oracle) ViewWatermark(tree id.Tree) uint64 {
	o.viewMu.Lock()
	wm := o.viewWM[tree]
	o.viewMu.Unlock()
	return wm
}

// ViewWatermarks returns a copy of every published view watermark.
func (o *Oracle) ViewWatermarks() map[id.Tree]uint64 {
	o.viewMu.Lock()
	out := make(map[id.Tree]uint64, len(o.viewWM))
	for t, wm := range o.viewWM {
		out[t] = wm
	}
	o.viewMu.Unlock()
	return out
}

// WaitForViewWatermark blocks until the deferred view's watermark reaches ts
// or ctx is done (returning ctx's error). It is the read-your-writes barrier:
// a reader that waits for its own commit timestamp is guaranteed the applier
// has folded that commit's deltas into the view. If the view is dropped while
// the waiter is blocked, it returns ErrViewWatermarkDropped rather than
// hanging on a watermark that will never advance.
func (o *Oracle) WaitForViewWatermark(ctx context.Context, tree id.Tree, ts uint64) error {
	for {
		o.viewMu.Lock()
		wm := o.viewWM[tree]
		_, dropped := o.viewDropped[tree]
		wake := o.viewWake
		o.viewMu.Unlock()
		if wm >= ts {
			return nil
		}
		if dropped {
			return ErrViewWatermarkDropped
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
