// Package txn implements transaction bookkeeping: identity, state, isolation
// level, the per-transaction chain of logged operations that drives rollback,
// and savepoints. System transactions — the paper's nested top-level actions
// used for ghost creation and cleanup — are ordinary transactions flagged
// Sys: they commit independently of the user transaction that spawned them
// and hold their (short) locks only until their own commit.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
	"repro/internal/wal"
)

// State is a transaction's lifecycle state.
type State uint8

const (
	// StateActive means the transaction may still perform work.
	StateActive State = iota + 1
	// StateCommitted means the commit record is written.
	StateCommitted
	// StateAborted means rollback completed.
	StateAborted
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Level is the isolation level of a transaction.
type Level uint8

const (
	// ReadCommitted releases S locks after each read; view readers see
	// committed aggregate values without blocking on escrow writers.
	ReadCommitted Level = iota + 1
	// RepeatableRead holds S locks to commit.
	RepeatableRead
	// Serializable additionally takes range locks on scans, so view readers
	// conflict with escrow writers (the trade-off of DESIGN.md §5).
	Serializable
	// Snapshot reads a transaction-consistent multi-version snapshot pinned
	// at Begin: readers resolve visibility by commit-timestamp comparison
	// against in-memory version chains, with zero lock-manager traffic and
	// zero blocking of concurrent escrow writers (DESIGN.md §8). Writes (in
	// non-read-only snapshot transactions) still take ordinary write locks;
	// the engine does not detect write skew.
	Snapshot
)

// String names the level.
func (l Level) String() string {
	switch l {
	case ReadCommitted:
		return "read-committed"
	case RepeatableRead:
		return "repeatable-read"
	case Serializable:
		return "serializable"
	case Snapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// ErrNotActive reports an operation on a finished transaction.
var ErrNotActive = errors.New("txn: transaction not active")

// Txn is one transaction's bookkeeping.
type Txn struct {
	ID        id.Txn
	Sys       bool
	Isolation Level

	// Ctx, when non-nil, cancels the transaction's in-flight lock waits
	// (set by the engine's BeginTx). LockTimeout, when positive, overrides
	// the engine-wide lock wait timeout for this transaction. Both are set
	// once before the transaction runs and read-only after.
	Ctx         context.Context
	LockTimeout time.Duration

	// Started is when the transaction began, for tx-lifetime tracing.
	Started time.Time

	mu     sync.Mutex
	state  State
	ops    []*wal.Record  // logged operations, in LSN order, for rollback
	opsBuf [4]*wal.Record // inline first ops, so short transactions never grow
}

// State returns the current lifecycle state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Active reports whether the transaction may perform work.
func (t *Txn) Active() bool { return t.State() == StateActive }

// RecordOp appends a logged operation to the undo chain.
func (t *Txn) RecordOp(rec *wal.Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateActive {
		return fmt.Errorf("%w: %s is %s", ErrNotActive, t.ID, t.state)
	}
	if t.ops == nil {
		t.ops = t.opsBuf[:0]
	}
	t.ops = append(t.ops, rec)
	return nil
}

// Ops returns the undo chain in LSN order. The slice is a snapshot.
func (t *Txn) Ops() []*wal.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*wal.Record(nil), t.ops...)
}

// Savepoint marks a rollback point: the current length of the undo chain.
type Savepoint int

// Savepoint returns a marker for partial rollback.
func (t *Txn) Savepoint() Savepoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Savepoint(len(t.ops))
}

// OpsSince returns the operations recorded after sp, newest first (the order
// rollback applies their inverses), and truncates the chain back to sp.
func (t *Txn) OpsSince(sp Savepoint) []*wal.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(sp) < 0 || int(sp) > len(t.ops) {
		return nil
	}
	tail := t.ops[sp:]
	out := make([]*wal.Record, 0, len(tail))
	for i := len(tail) - 1; i >= 0; i-- {
		out = append(out, tail[i])
	}
	t.ops = t.ops[:sp]
	return out
}

// markFinished transitions to a terminal state.
func (t *Txn) markFinished(s State) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateActive {
		return fmt.Errorf("%w: %s is %s", ErrNotActive, t.ID, t.state)
	}
	t.state = s
	t.ops = nil
	t.opsBuf = [4]*wal.Record{} // release record references for GC
	return nil
}

// Manager allocates transaction IDs and tracks active transactions.
type Manager struct {
	nextID atomic.Uint64
	mu     sync.Mutex
	active map[id.Txn]*Txn
}

// NewManager returns a manager whose first transaction gets ID firstID.
func NewManager(firstID id.Txn) *Manager {
	m := &Manager{active: make(map[id.Txn]*Txn)}
	if firstID == 0 {
		firstID = 1
	}
	m.nextID.Store(uint64(firstID) - 1)
	return m
}

// Begin starts a transaction.
func (m *Manager) Begin(sys bool, level Level) *Txn {
	t := &Txn{
		ID:        id.Txn(m.nextID.Add(1)),
		Sys:       sys,
		Isolation: level,
		state:     StateActive,
	}
	m.mu.Lock()
	m.active[t.ID] = t
	m.mu.Unlock()
	return t
}

// Commit marks t committed and unregisters it.
func (m *Manager) Commit(t *Txn) error { return m.finish(t, StateCommitted) }

// Abort marks t aborted and unregisters it.
func (m *Manager) Abort(t *Txn) error { return m.finish(t, StateAborted) }

func (m *Manager) finish(t *Txn, s State) error {
	if err := t.markFinished(s); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.active, t.ID)
	m.mu.Unlock()
	return nil
}

// ActiveIDs returns the IDs of in-flight transactions, sorted.
func (m *Manager) ActiveIDs() []id.Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]id.Txn, 0, len(m.active))
	for tid := range m.active {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// NextID returns the ID the next transaction would receive; checkpoints
// persist it so recovered databases keep allocating above it.
func (m *Manager) NextID() id.Txn { return id.Txn(m.nextID.Load() + 1) }

// ObserveID raises the ID allocator so future transactions get IDs above
// observed; recovery calls this with the highest ID found in the log.
func (m *Manager) ObserveID(observed id.Txn) {
	for {
		cur := m.nextID.Load()
		if cur >= uint64(observed) {
			return
		}
		if m.nextID.CompareAndSwap(cur, uint64(observed)) {
			return
		}
	}
}
