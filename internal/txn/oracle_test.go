package txn

import (
	"sync"
	"testing"
	"time"
)

func TestOracleWatermarkLagsInflight(t *testing.T) {
	o := NewOracle()
	if got := o.ReadTS(); got != 0 {
		t.Fatalf("fresh oracle ReadTS = %d, want 0", got)
	}
	a := o.AllocateCommitTS()
	b := o.AllocateCommitTS()
	if a != 1 || b != 2 {
		t.Fatalf("allocated %d,%d, want 1,2", a, b)
	}
	if got := o.ReadTS(); got != 0 {
		t.Fatalf("ReadTS with both inflight = %d, want 0", got)
	}
	// Finishing the newer commit must not expose the older, still-inflight one.
	o.FinishCommit(b)
	if got := o.ReadTS(); got != 0 {
		t.Fatalf("ReadTS with ts=1 inflight = %d, want 0", got)
	}
	o.FinishCommit(a)
	if got := o.ReadTS(); got != 2 {
		t.Fatalf("ReadTS after both finished = %d, want 2", got)
	}
}

func TestOracleSnapshotPinsHorizon(t *testing.T) {
	o := NewOracle()
	ts := o.AllocateCommitTS()
	o.FinishCommit(ts)
	rts, h := o.BeginSnapshot()
	if rts != 1 {
		t.Fatalf("snapshot read ts = %d, want 1", rts)
	}
	if n := o.ActiveSnapshots(); n != 1 {
		t.Fatalf("active snapshots = %d, want 1", n)
	}
	ts2 := o.AllocateCommitTS()
	o.FinishCommit(ts2)
	if got := o.PruneHorizon(); got != 1 {
		t.Fatalf("horizon with pinned snapshot = %d, want 1", got)
	}
	if age := o.OldestSnapshotAge(time.Now().Add(time.Second)); age < time.Second {
		t.Fatalf("oldest snapshot age = %v, want >= 1s", age)
	}
	o.EndSnapshot(h)
	if n := o.ActiveSnapshots(); n != 0 {
		t.Fatalf("active snapshots after end = %d, want 0", n)
	}
	if got := o.PruneHorizon(); got != 2 {
		t.Fatalf("horizon after snapshot retired = %d, want 2", got)
	}
	if got := o.SnapshotsBegun(); got != 1 {
		t.Fatalf("snapshots begun = %d, want 1", got)
	}
	o.EndSnapshot(h) // double end is a no-op
	if n := o.ActiveSnapshots(); n != 0 {
		t.Fatalf("active snapshots after double end = %d, want 0", n)
	}
}

// TestOracleSnapshotNeverPassesHorizon drives committers, snapshot begin/end,
// and horizon computation concurrently and checks the registration invariant:
// a horizon computed at any moment is never above a snapshot that was already
// registered when it was computed (each goroutine checks its own snapshot's
// ts >= any horizon it observes while holding the snapshot).
func TestOracleSnapshotNeverPassesHorizon(t *testing.T) {
	o := NewOracle()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts := o.AllocateCommitTS()
				o.FinishCommit(ts)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ts, h := o.BeginSnapshot()
				if hor := o.PruneHorizon(); hor > ts {
					t.Errorf("horizon %d passed active snapshot ts %d", hor, ts)
				}
				o.EndSnapshot(h)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	// Let readers drain, then stop writers.
	wg.Add(1)
	go func() { defer wg.Done(); time.Sleep(50 * time.Millisecond); close(stop) }()
	wg.Wait()
}
