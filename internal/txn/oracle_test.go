package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/id"
)

func TestOracleWatermarkLagsInflight(t *testing.T) {
	o := NewOracle()
	if got := o.ReadTS(); got != 0 {
		t.Fatalf("fresh oracle ReadTS = %d, want 0", got)
	}
	a := o.AllocateCommitTS()
	b := o.AllocateCommitTS()
	if a != 1 || b != 2 {
		t.Fatalf("allocated %d,%d, want 1,2", a, b)
	}
	if got := o.ReadTS(); got != 0 {
		t.Fatalf("ReadTS with both inflight = %d, want 0", got)
	}
	// Finishing the newer commit must not expose the older, still-inflight one.
	o.FinishCommit(b)
	if got := o.ReadTS(); got != 0 {
		t.Fatalf("ReadTS with ts=1 inflight = %d, want 0", got)
	}
	o.FinishCommit(a)
	if got := o.ReadTS(); got != 2 {
		t.Fatalf("ReadTS after both finished = %d, want 2", got)
	}
}

func TestOracleSnapshotPinsHorizon(t *testing.T) {
	o := NewOracle()
	ts := o.AllocateCommitTS()
	o.FinishCommit(ts)
	rts, h := o.BeginSnapshot()
	if rts != 1 {
		t.Fatalf("snapshot read ts = %d, want 1", rts)
	}
	if n := o.ActiveSnapshots(); n != 1 {
		t.Fatalf("active snapshots = %d, want 1", n)
	}
	ts2 := o.AllocateCommitTS()
	o.FinishCommit(ts2)
	if got := o.PruneHorizon(); got != 1 {
		t.Fatalf("horizon with pinned snapshot = %d, want 1", got)
	}
	if age := o.OldestSnapshotAge(time.Now().Add(time.Second)); age < time.Second {
		t.Fatalf("oldest snapshot age = %v, want >= 1s", age)
	}
	o.EndSnapshot(h)
	if n := o.ActiveSnapshots(); n != 0 {
		t.Fatalf("active snapshots after end = %d, want 0", n)
	}
	if got := o.PruneHorizon(); got != 2 {
		t.Fatalf("horizon after snapshot retired = %d, want 2", got)
	}
	if got := o.SnapshotsBegun(); got != 1 {
		t.Fatalf("snapshots begun = %d, want 1", got)
	}
	o.EndSnapshot(h) // double end is a no-op
	if n := o.ActiveSnapshots(); n != 0 {
		t.Fatalf("active snapshots after double end = %d, want 0", n)
	}
}

// TestOracleWaitForViewWatermarkDropUnblocks pins the drop contract: a waiter
// blocked on a view watermark must return ErrViewWatermarkDropped when the
// view is dropped — not hang forever on a watermark that will never advance.
// Covers both a view that had published a watermark and one that never did.
func TestOracleWaitForViewWatermarkDropUnblocks(t *testing.T) {
	for _, published := range []bool{true, false} {
		o := NewOracle()
		tree := id.Tree(7)
		if published {
			o.AdvanceViewWatermark(tree, 3)
		}
		errc := make(chan error, 1)
		go func() {
			errc <- o.WaitForViewWatermark(context.Background(), tree, 100)
		}()
		// Let the waiter block, then drop the view out from under it.
		time.Sleep(10 * time.Millisecond)
		o.DropViewWatermark(tree)
		select {
		case err := <-errc:
			if !errors.Is(err, ErrViewWatermarkDropped) {
				t.Fatalf("published=%v: wait returned %v, want ErrViewWatermarkDropped", published, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("published=%v: waiter still blocked 5s after DropViewWatermark", published)
		}
		// A wait begun after the drop fails immediately too.
		if err := o.WaitForViewWatermark(context.Background(), tree, 1); !errors.Is(err, ErrViewWatermarkDropped) {
			t.Fatalf("published=%v: post-drop wait returned %v, want ErrViewWatermarkDropped", published, err)
		}
		// An already-satisfied wait still succeeds regardless of other drops.
		other := id.Tree(9)
		o.AdvanceViewWatermark(other, 5)
		if err := o.WaitForViewWatermark(context.Background(), other, 5); err != nil {
			t.Fatalf("published=%v: satisfied wait on live view returned %v", published, err)
		}
	}
}

// TestOracleWaitForViewWatermarkCtxCancelRacingDrop interleaves context
// cancellation with concurrent drops and advances: every waiter must resolve
// to exactly one of nil / ctx.Err() / ErrViewWatermarkDropped, never hang.
func TestOracleWaitForViewWatermarkCtxCancelRacingDrop(t *testing.T) {
	o := NewOracle()
	const waiters = 16
	tree := id.Tree(11)
	o.AdvanceViewWatermark(tree, 1)
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the waiters use the cancelable context, half block on the
			// drop alone.
			c := context.Background()
			if i%2 == 0 {
				c = ctx
			}
			errs <- o.WaitForViewWatermark(c, tree, 1000)
		}(i)
	}
	// Racing advances (below the target), a cancel, and the drop.
	var race sync.WaitGroup
	race.Add(2)
	go func() { defer race.Done(); o.AdvanceViewWatermark(tree, 2); cancel() }()
	go func() { defer race.Done(); o.AdvanceViewWatermark(tree, 3); o.DropViewWatermark(tree) }()
	race.Wait()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters still blocked 10s after cancel+drop")
	}
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("waiter returned nil: watermark never reached the target")
		}
		if !errors.Is(err, ErrViewWatermarkDropped) && !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter returned %v, want ErrViewWatermarkDropped or context.Canceled", err)
		}
	}
}

// TestOracleViewWatermarkHoldsHorizon pins the scrubber's retention contract:
// a deferred view's applied watermark participates in the prune horizon, so a
// timestamp read from ViewApplied can always be pinned with BeginSnapshotAt.
func TestOracleViewWatermarkHoldsHorizon(t *testing.T) {
	o := NewOracle()
	for i := 0; i < 5; i++ {
		ts := o.AllocateCommitTS()
		o.FinishCommit(ts)
	}
	tree := id.Tree(3)
	o.AdvanceViewWatermark(tree, 2)
	if got := o.PruneHorizon(); got != 2 {
		t.Fatalf("horizon with view watermark 2 = %d, want 2", got)
	}
	// Pinning the watermark succeeds; pinning below the horizon fails.
	h, ok := o.BeginSnapshotAt(2)
	if !ok {
		t.Fatal("BeginSnapshotAt(watermark) refused")
	}
	if _, ok := o.BeginSnapshotAt(1); ok {
		t.Fatal("BeginSnapshotAt below the horizon succeeded")
	}
	// The pinned snapshot holds the horizon even after the watermark advances.
	o.AdvanceViewWatermark(tree, 5)
	if got := o.PruneHorizon(); got != 2 {
		t.Fatalf("horizon with pinned ts 2 = %d, want 2", got)
	}
	o.EndSnapshot(h)
	if got := o.PruneHorizon(); got != 5 {
		t.Fatalf("horizon after unpin = %d, want 5 (watermark), got %d", got, got)
	}
	// Dropping the view releases its hold entirely.
	o.DropViewWatermark(tree)
	if got := o.PruneHorizon(); got != 5 {
		t.Fatalf("horizon after drop = %d, want 5 (commit watermark)", got)
	}
}

// TestOracleViewApplied pins the apply-pair contract: both components are
// monotonic, read atomically, and cleared by a drop.
func TestOracleViewApplied(t *testing.T) {
	o := NewOracle()
	tree := id.Tree(4)
	if a, w := o.ViewApplied(tree); a != 0 || w != 0 {
		t.Fatalf("fresh pair = (%d,%d), want (0,0)", a, w)
	}
	o.AdvanceViewApplied(tree, 7, 5)
	if a, w := o.ViewApplied(tree); a != 7 || w != 5 {
		t.Fatalf("pair = (%d,%d), want (7,5)", a, w)
	}
	// Stale updates are no-ops; watermark-only advances keep applyTS.
	o.AdvanceViewApplied(tree, 6, 4)
	if a, w := o.ViewApplied(tree); a != 7 || w != 5 {
		t.Fatalf("pair after stale update = (%d,%d), want (7,5)", a, w)
	}
	o.AdvanceViewWatermark(tree, 9)
	if a, w := o.ViewApplied(tree); a != 7 || w != 9 {
		t.Fatalf("pair after idle advance = (%d,%d), want (7,9)", a, w)
	}
	// AdvanceViewApplied wakes watermark waiters like AdvanceViewWatermark.
	done := make(chan error, 1)
	go func() { done <- o.WaitForViewWatermark(context.Background(), tree, 12) }()
	time.Sleep(5 * time.Millisecond)
	o.AdvanceViewApplied(tree, 13, 12)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter woken by AdvanceViewApplied returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AdvanceViewApplied did not wake watermark waiter")
	}
	o.DropViewWatermark(tree)
	if a, w := o.ViewApplied(tree); a != 0 || w != 0 {
		t.Fatalf("pair after drop = (%d,%d), want (0,0)", a, w)
	}
}

// TestOracleSnapshotNeverPassesHorizon drives committers, snapshot begin/end,
// and horizon computation concurrently and checks the registration invariant:
// a horizon computed at any moment is never above a snapshot that was already
// registered when it was computed (each goroutine checks its own snapshot's
// ts >= any horizon it observes while holding the snapshot).
func TestOracleSnapshotNeverPassesHorizon(t *testing.T) {
	o := NewOracle()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts := o.AllocateCommitTS()
				o.FinishCommit(ts)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ts, h := o.BeginSnapshot()
				if hor := o.PruneHorizon(); hor > ts {
					t.Errorf("horizon %d passed active snapshot ts %d", hor, ts)
				}
				o.EndSnapshot(h)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	// Let readers drain, then stop writers.
	wg.Add(1)
	go func() { defer wg.Done(); time.Sleep(50 * time.Millisecond); close(stop) }()
	wg.Wait()
}
