package lock

// residentState reports the total lock-table entries and holder-index
// entries across all shards, for leak checks in tests.
func (m *Manager) residentState() (resources, holders int) {
	for _, s := range m.shards {
		s.mu.Lock()
		resources += len(s.table)
		holders += len(s.held)
		s.mu.Unlock()
	}
	return
}

// checkEdgeConsistency recomputes every shard's waits-for edges from first
// principles and compares with the incrementally-maintained sets. Returns a
// description of the first mismatch, or "".
func (m *Manager) checkEdgeConsistency() string {
	for _, s := range m.shards {
		s.mu.Lock()
		want := make(map[*request]map[string]bool)
		for res, ls := range s.table {
			for pos, req := range ls.queue {
				// req.mode is already the conversion target (Sup applied at
				// enqueue), so incompatibility is checked against it directly.
				edges := make(map[string]bool)
				for holder, hm := range ls.granted {
					if holder != req.txn && !Compatible(hm, req.mode) {
						edges[holder.String()] = true
					}
				}
				for _, earlier := range ls.queue[:pos] {
					edges[earlier.txn.String()] = true
				}
				_ = res
				want[req] = edges
			}
		}
		got := make(map[*request]map[string]bool)
		for _, ls := range s.table {
			for _, req := range ls.queue {
				edges := make(map[string]bool)
				for to := range s.waits[req.txn] {
					edges[to.String()] = true
				}
				got[req] = edges
			}
		}
		for req, w := range want {
			g := got[req]
			if len(g) != len(w) {
				s.mu.Unlock()
				return "edge count mismatch for txn " + req.txn.String()
			}
			for e := range w {
				if !g[e] {
					s.mu.Unlock()
					return "missing edge " + req.txn.String() + " -> " + e
				}
			}
		}
		s.mu.Unlock()
	}
	return ""
}
