package lock

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
	"repro/internal/metrics"
)

// Resource names a lockable object: a whole tree (Key == "") or one key
// within a tree.
type Resource struct {
	Tree id.Tree
	Key  string
}

// TreeResource returns the whole-tree resource (for intention and escalated
// locks).
func TreeResource(t id.Tree) Resource { return Resource{Tree: t} }

// KeyResource returns the resource for one key of a tree.
func KeyResource(t id.Tree, key []byte) Resource {
	return Resource{Tree: t, Key: string(key)}
}

// String renders the resource for errors and traces.
func (r Resource) String() string {
	if r.Key == "" {
		return r.Tree.String()
	}
	return fmt.Sprintf("%s[%x]", r.Tree, r.Key)
}

// Errors returned by Lock.
var (
	// ErrDeadlock aborts the requester chosen as deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout reports that the lock wait exceeded its timeout.
	ErrTimeout = errors.New("lock: wait timed out")
)

// Stats are cumulative lock-manager counters, read with Snapshot.
type Stats struct {
	Requests  int64 // total Lock calls
	Waits     int64 // calls that blocked
	Deadlocks int64 // requests aborted as deadlock victims
	Timeouts  int64 // requests aborted by timeout

	// Shards is the stripe count the manager was built with.
	Shards int
	// Collisions counts shard-mutex acquisitions that found the mutex
	// already held (TryLock misses) — the striping-efficiency signal.
	Collisions int64
	// MaxQueueDepth is the deepest wait queue any single resource reached.
	MaxQueueDepth int64
	// Sweeps counts background deadlock-detector passes; LastSweep and
	// MaxSweep report their duration.
	Sweeps    int64
	LastSweep time.Duration
	MaxSweep  time.Duration
	// PerShard breaks collisions/queue depth down by stripe.
	PerShard []ShardStats
}

// ShardStats are one stripe's counters.
type ShardStats struct {
	Collisions    int64
	MaxQueueDepth int64
	Resources     int // current lock-table entries
}

// request is one waiting lock request.
type request struct {
	txn     id.Txn
	mode    Mode // target mode (already the sup for conversions)
	convert bool // the txn already holds the resource in a weaker mode
	res     Resource
	granted chan error
}

// lockState is the queue and grant table for one resource.
type lockState struct {
	granted map[id.Txn]Mode
	queue   []*request
}

// shard is one stripe of the lock manager: a private mutex, lock table,
// reverse index, and waits-for edges for the resources that hash to it.
// Uncontended acquires on resources in different shards never touch a
// shared mutex.
type shard struct {
	mu     sync.Mutex
	table  map[Resource]*lockState
	held   map[id.Txn]map[Resource]Mode // reverse index for ReleaseAll
	waits  map[id.Txn]map[id.Txn]bool   // waits-for edges of waiters queued here
	wanted map[id.Txn]*request          // the single request a txn may be blocked on

	// Free lists keep the uncontended acquire/release cycle allocation-free:
	// emptied lockStates, held maps, and edge sets are recycled instead of
	// handed to the garbage collector.
	lsFree   []*lockState
	heldFree []map[Resource]Mode
	edgeFree []map[id.Txn]bool

	collisions atomic.Int64
	maxQueue   int // guarded by mu
}

// lock acquires the shard mutex, counting contended acquisitions.
func (s *shard) lock() {
	if !s.mu.TryLock() {
		s.collisions.Add(1)
		s.mu.Lock()
	}
}

func newShard() *shard {
	return &shard{
		table:  make(map[Resource]*lockState),
		held:   make(map[id.Txn]map[Resource]Mode),
		waits:  make(map[id.Txn]map[id.Txn]bool),
		wanted: make(map[id.Txn]*request),
	}
}

// Manager is the lock manager. One instance serves a whole database. The
// lock table is striped: resources hash to one of N shards, so independent
// resources never contend. Deadlock detection runs in a background detector
// goroutine (see detector.go), off the acquire path.
type Manager struct {
	shards []*shard
	mask   uint32

	requests  atomic.Int64
	waitCount atomic.Int64
	deadlocks atomic.Int64
	timeouts  atomic.Int64

	sweeps    atomic.Int64
	lastSweep atomic.Int64 // ns
	maxSweep  atomic.Int64 // ns

	sweepEvery time.Duration
	kick       chan struct{}
	stop       chan struct{}
	done       chan struct{}
	closeOnce  sync.Once

	// met and tracer receive wait-time attribution and lock-wait events; both
	// may be nil (standalone managers) — observation paths are nil-safe.
	met    *metrics.LockMetrics
	tracer metrics.Tracer

	// DefaultTimeout bounds waits when Lock is called with timeout 0.
	DefaultTimeout time.Duration
}

// Options configure a Manager; the zero value selects defaults.
type Options struct {
	// Shards is the stripe count, rounded up to a power of two.
	// 0 scales with GOMAXPROCS.
	Shards int
	// DefaultTimeout bounds waits when Lock gets timeout 0 (default 10s).
	DefaultTimeout time.Duration
	// SweepInterval throttles the background deadlock detector: at most one
	// sweep per interval while waiters exist (default 1ms). It bounds how
	// long a deadlocked transaction waits before its victim aborts.
	SweepInterval time.Duration
	// Metrics, when set, receives per-shard wait-time attribution and the
	// global wait-latency histogram. Only blocked acquisitions observe it.
	Metrics *metrics.LockMetrics
	// Tracer, when set, receives an EventLockWait for every blocked
	// acquisition when it resolves (granted, deadlock, timeout, or cancel).
	Tracer metrics.Tracer
}

// NewManager returns an empty lock manager with default options.
func NewManager() *Manager { return NewManagerOpts(Options{}) }

// NewManagerOpts returns an empty lock manager configured by o.
func NewManagerOpts(o Options) *Manager {
	n := o.Shards
	if n <= 0 {
		n = defaultShards()
	}
	n = nextPow2(n)
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 10 * time.Second
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = time.Millisecond
	}
	m := &Manager{
		shards:         make([]*shard, n),
		mask:           uint32(n - 1),
		sweepEvery:     o.SweepInterval,
		kick:           make(chan struct{}, 1),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		met:            o.Metrics,
		tracer:         o.Tracer,
		DefaultTimeout: o.DefaultTimeout,
	}
	if m.met != nil {
		m.met.InitShards(n)
	}
	for i := range m.shards {
		m.shards[i] = newShard()
	}
	go m.detectorLoop()
	return m
}

// defaultShards scales the stripe count with available parallelism.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0) * 4
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	return n
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Close stops the background deadlock detector. Pending Lock calls are not
// interrupted; callers should drain transactions first.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		<-m.done
	})
}

// shardOf hashes res to its stripe (FNV-1a over tree id and key bytes).
func (m *Manager) shardOf(res Resource) *shard {
	return m.shards[m.shardIndex(res)]
}

func (m *Manager) shardIndex(res Resource) uint32 {
	h := uint32(2166136261)
	t := uint32(res.Tree)
	h = (h ^ (t & 0xff)) * 16777619
	h = (h ^ ((t >> 8) & 0xff)) * 16777619
	h = (h ^ ((t >> 16) & 0xff)) * 16777619
	h = (h ^ (t >> 24)) * 16777619
	for i := 0; i < len(res.Key); i++ {
		h = (h ^ uint32(res.Key[i])) * 16777619
	}
	return h & m.mask
}

// Snapshot returns the cumulative counters.
func (m *Manager) Snapshot() Stats {
	st := Stats{
		Requests:  m.requests.Load(),
		Waits:     m.waitCount.Load(),
		Deadlocks: m.deadlocks.Load(),
		Timeouts:  m.timeouts.Load(),
		Shards:    len(m.shards),
		Sweeps:    m.sweeps.Load(),
		LastSweep: time.Duration(m.lastSweep.Load()),
		MaxSweep:  time.Duration(m.maxSweep.Load()),
		PerShard:  make([]ShardStats, len(m.shards)),
	}
	for i, s := range m.shards {
		s.lock()
		ss := ShardStats{
			Collisions:    s.collisions.Load(),
			MaxQueueDepth: int64(s.maxQueue),
			Resources:     len(s.table),
		}
		s.mu.Unlock()
		st.PerShard[i] = ss
		st.Collisions += ss.Collisions
		if ss.MaxQueueDepth > st.MaxQueueDepth {
			st.MaxQueueDepth = ss.MaxQueueDepth
		}
	}
	return st
}

// Lock acquires res in mode for txn, blocking until granted, deadlock, or
// timeout (0 means DefaultTimeout). Re-requests in covered modes return
// immediately; stronger modes convert. Conversions wait ahead of new
// requests. Deadlock victims are chosen by the background detector (the
// youngest transaction in a cycle aborts).
func (m *Manager) Lock(txn id.Txn, res Resource, mode Mode, timeout time.Duration) error {
	return m.LockCtx(context.Background(), txn, res, mode, timeout)
}

// LockCtx is Lock with a context: cancelling ctx aborts an in-flight wait
// with a wrapped ctx.Err(). The fast (uncontended) path never checks ctx.
func (m *Manager) LockCtx(ctx context.Context, txn id.Txn, res Resource, mode Mode, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = m.DefaultTimeout
	}
	m.requests.Add(1)

	idx := m.shardIndex(res)
	s := m.shards[idx]
	s.lock()
	ls := s.table[res]
	if ls == nil {
		ls = s.newLockState()
		s.table[res] = ls
	}
	cur := ls.granted[txn]
	target := Sup(cur, mode)
	if cur != ModeNone && target == cur {
		s.mu.Unlock()
		return nil // already covered
	}
	convert := cur != ModeNone
	if grantable(ls, txn, target) && (convert || len(ls.queue) == 0) {
		s.grant(ls, txn, res, target)
		if convert {
			// The stronger mode may block waiters the old mode admitted;
			// their waits-for edges must reflect it for the detector.
			for _, w := range ls.queue {
				if w.txn != txn && !Compatible(target, w.mode) {
					s.waits[w.txn][txn] = true
				}
			}
		}
		s.mu.Unlock()
		return nil
	}

	// Must wait.
	req := &request{txn: txn, mode: target, convert: convert, res: res, granted: make(chan error, 1)}
	pos := len(ls.queue)
	if convert {
		// Conversions queue ahead of non-conversions.
		pos = 0
		for pos < len(ls.queue) && ls.queue[pos].convert {
			pos++
		}
	}
	ls.queue = append(ls.queue, nil)
	copy(ls.queue[pos+1:], ls.queue[pos:])
	ls.queue[pos] = req
	if d := len(ls.queue); d > s.maxQueue {
		s.maxQueue = d
	}
	s.wanted[txn] = req
	s.addWaiterEdges(ls, pos)
	m.waitCount.Add(1)
	s.mu.Unlock()
	m.kickDetector()

	start := time.Now()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var err error
	select {
	case err = <-req.granted:
	case <-timer.C:
		if err = m.raceDrain(s, res, ls, req); err == errDropped {
			m.timeouts.Add(1)
			err = fmt.Errorf("%w: %s requesting %s on %s", ErrTimeout, txn, target, res)
		}
	case <-ctx.Done():
		if err = m.raceDrain(s, res, ls, req); err == errDropped {
			m.timeouts.Add(1)
			err = fmt.Errorf("lock: wait canceled: %w (%s requesting %s on %s)", ctx.Err(), txn, target, res)
		}
	}
	m.observeWait(idx, txn, res, target, time.Since(start), err)
	return err
}

// errDropped is raceDrain's signal that the request was still queued and has
// now been removed — the caller owns producing the final error.
var errDropped = errors.New("lock: request dropped")

// raceDrain resolves the race between a timeout/cancel and a grant (or victim
// abort) already delivered: if req resolved first its error wins; otherwise
// the request is dropped from the queue and errDropped returned.
func (m *Manager) raceDrain(s *shard, res Resource, ls *lockState, req *request) error {
	s.lock()
	select {
	case err := <-req.granted:
		s.mu.Unlock()
		return err
	default:
	}
	s.dropRequest(res, ls, req)
	s.mu.Unlock()
	return errDropped
}

// observeWait attributes one resolved blocked acquisition to metrics and the
// tracer. Outcome is derived from err: nil grant, deadlock victim, or
// timeout/cancel.
func (m *Manager) observeWait(idx uint32, txn id.Txn, res Resource, mode Mode, wait time.Duration, err error) {
	outcome := "granted"
	switch {
	case err == nil:
	case errors.Is(err, ErrDeadlock):
		outcome = "deadlock"
	case errors.Is(err, ErrTimeout):
		outcome = "timeout"
	default:
		outcome = "canceled"
	}
	if m.met != nil {
		m.met.Wait.Observe(wait)
		if sw := m.met.Shard(int(idx)); sw != nil {
			sw.Waits.Add(1)
			sw.WaitNs.Add(wait.Nanoseconds())
			switch outcome {
			case "deadlock":
				sw.Deadlocks.Add(1)
			case "timeout", "canceled":
				sw.Timeouts.Add(1)
			}
		}
		// Attribute the wait to the actual key resource (tree-level and
		// intention locks carry no key and stay stripe-attributed only).
		if res.Key != "" {
			m.met.Hot.Add(metrics.HotKey{Tree: res.Tree, Key: res.Key},
				wait.Nanoseconds(), 1)
		}
	}
	if m.tracer != nil {
		m.tracer.TraceEvent(metrics.Event{
			Type:     metrics.EventLockWait,
			Txn:      txn,
			Dur:      wait,
			Resource: res.String(),
			Mode:     mode.String(),
			Outcome:  outcome,
		})
	}
}

// grantable reports whether txn may hold res in mode given current grants
// (ignoring txn's own current grant, which a conversion replaces).
func grantable(ls *lockState, txn id.Txn, mode Mode) bool {
	for holder, held := range ls.granted {
		if holder == txn {
			continue
		}
		if !Compatible(held, mode) {
			return false
		}
	}
	return true
}

func (s *shard) grant(ls *lockState, txn id.Txn, res Resource, mode Mode) {
	ls.granted[txn] = mode
	h := s.held[txn]
	if h == nil {
		h = s.newHeldMap()
		s.held[txn] = h
	}
	h[res] = mode
}

// addWaiterEdges installs the waits-for edges for the request just queued at
// pos — incompatible grant holders plus every earlier waiter — and adds one
// edge from each later waiter to it. O(grants + queue), where the old full
// rebuild was O(queue²) per enqueue.
func (s *shard) addWaiterEdges(ls *lockState, pos int) {
	req := ls.queue[pos]
	edges := s.newEdgeSet()
	for holder, held := range ls.granted {
		if holder != req.txn && !Compatible(held, req.mode) {
			edges[holder] = true
		}
	}
	for j := 0; j < pos; j++ {
		if ls.queue[j].txn != req.txn {
			edges[ls.queue[j].txn] = true
		}
	}
	s.waits[req.txn] = edges
	for j := pos + 1; j < len(ls.queue); j++ {
		s.waits[ls.queue[j].txn][req.txn] = true
	}
}

// setEdge flips one waits-for edge.
func setEdge(edges map[id.Txn]bool, to id.Txn, on bool) {
	if on {
		edges[to] = true
	} else {
		delete(edges, to)
	}
}

// dropRequest removes a waiting request (victim or timeout), repairs the
// remaining waiters' edges, and re-runs the grant scan, since the drop may
// unblock others.
func (s *shard) dropRequest(res Resource, ls *lockState, req *request) {
	pos := -1
	for i, r := range ls.queue {
		if r == req {
			pos = i
			break
		}
	}
	if pos >= 0 {
		copy(ls.queue[pos:], ls.queue[pos+1:])
		ls.queue[len(ls.queue)-1] = nil
		ls.queue = ls.queue[:len(ls.queue)-1]
		// Waiters that queued after req no longer wait on it as an earlier
		// waiter; if it was a conversion the txn still holds the resource,
		// so the edge stays exactly when that held mode is incompatible.
		heldMode := ls.granted[req.txn]
		for i := pos; i < len(ls.queue); i++ {
			w := ls.queue[i]
			if w.txn != req.txn {
				setEdge(s.waits[w.txn], req.txn, heldMode != ModeNone && !Compatible(heldMode, w.mode))
			}
		}
	}
	if s.wanted[req.txn] == req {
		delete(s.wanted, req.txn)
		s.freeEdges(req.txn)
	}
	s.scan(res, ls)
}

// scan grants queued requests in order, stopping at the first that cannot
// proceed, and keeps survivors' waits-for edges current as grants happen.
func (s *shard) scan(res Resource, ls *lockState) {
	for len(ls.queue) > 0 {
		req := ls.queue[0]
		if !grantable(ls, req.txn, req.mode) {
			break
		}
		copy(ls.queue, ls.queue[1:])
		ls.queue[len(ls.queue)-1] = nil
		ls.queue = ls.queue[:len(ls.queue)-1]
		s.grant(ls, req.txn, res, req.mode)
		if s.wanted[req.txn] == req {
			delete(s.wanted, req.txn)
			s.freeEdges(req.txn)
		}
		// The granted txn moved from earlier-waiter to holder: survivors now
		// wait on it exactly when its granted mode is incompatible.
		for _, w := range ls.queue {
			if w.txn != req.txn {
				setEdge(s.waits[w.txn], req.txn, !Compatible(req.mode, w.mode))
			}
		}
		req.granted <- nil
	}
	s.gcState(res, ls)
}

func (s *shard) gcState(res Resource, ls *lockState) {
	if len(ls.granted) == 0 && len(ls.queue) == 0 {
		delete(s.table, res)
		s.freeLockState(ls)
	}
}

// Unlock releases txn's lock on res (used by system transactions, which hold
// short locks). It is a no-op when nothing is held.
func (m *Manager) Unlock(txn id.Txn, res Resource) {
	s := m.shardOf(res)
	s.lock()
	if ls := s.table[res]; ls != nil {
		s.release(res, ls, txn)
	}
	s.mu.Unlock()
}

// release drops txn's grant on res and rescans. Caller holds s.mu and must
// guarantee ls == s.table[res].
func (s *shard) release(res Resource, ls *lockState, txn id.Txn) {
	if _, ok := ls.granted[txn]; !ok {
		return
	}
	delete(ls.granted, txn)
	if h := s.held[txn]; h != nil {
		delete(h, res)
		if len(h) == 0 {
			delete(s.held, txn)
			s.freeHeldMap(h)
		}
	}
	// A releasing txn is running, so it cannot itself be queued here: every
	// waiter's edge to it was a holder edge, now gone.
	for _, w := range ls.queue {
		if w.txn != txn {
			delete(s.waits[w.txn], txn)
		}
	}
	s.scan(res, ls)
}

// ReleaseAll releases every lock txn holds (commit or abort). The reverse
// index is per-shard, so this visits each stripe once.
func (m *Manager) ReleaseAll(txn id.Txn) {
	var buf [16]Resource
	for _, s := range m.shards {
		s.lock()
		h := s.held[txn]
		if h == nil {
			s.mu.Unlock()
			continue
		}
		resources := buf[:0]
		for res := range h {
			resources = append(resources, res)
		}
		for _, res := range resources {
			if ls := s.table[res]; ls != nil {
				s.release(res, ls, txn)
			}
		}
		s.mu.Unlock()
	}
}

// HeldMode returns the mode txn currently holds on res.
func (m *Manager) HeldMode(txn id.Txn, res Resource) Mode {
	s := m.shardOf(res)
	s.lock()
	defer s.mu.Unlock()
	if h := s.held[txn]; h != nil {
		return h[res]
	}
	return ModeNone
}

// CountKeyLocks counts the key-granular locks txn holds within tree,
// aggregated across shards; the engine consults it for lock escalation.
func (m *Manager) CountKeyLocks(txn id.Txn, tree id.Tree) int {
	n := 0
	for _, s := range m.shards {
		s.lock()
		for res := range s.held[txn] {
			if res.Tree == tree && res.Key != "" {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// ReleaseKeyLocks drops every key-granular lock txn holds within tree; used
// after escalation replaced them with a tree lock.
func (m *Manager) ReleaseKeyLocks(txn id.Txn, tree id.Tree) {
	var buf [16]Resource
	for _, s := range m.shards {
		s.lock()
		drop := buf[:0]
		for res := range s.held[txn] {
			if res.Tree == tree && res.Key != "" {
				drop = append(drop, res)
			}
		}
		for _, res := range drop {
			if ls := s.table[res]; ls != nil {
				s.release(res, ls, txn)
			}
		}
		s.mu.Unlock()
	}
}

// Free-list plumbing. All callers hold s.mu.

const maxFree = 256 // cap per-shard free lists

func (s *shard) newLockState() *lockState {
	if n := len(s.lsFree); n > 0 {
		ls := s.lsFree[n-1]
		s.lsFree = s.lsFree[:n-1]
		return ls
	}
	return &lockState{granted: make(map[id.Txn]Mode, 4)}
}

func (s *shard) freeLockState(ls *lockState) {
	if len(s.lsFree) < maxFree {
		ls.queue = ls.queue[:0]
		s.lsFree = append(s.lsFree, ls)
	}
}

func (s *shard) newHeldMap() map[Resource]Mode {
	if n := len(s.heldFree); n > 0 {
		h := s.heldFree[n-1]
		s.heldFree = s.heldFree[:n-1]
		return h
	}
	return make(map[Resource]Mode, 4)
}

func (s *shard) freeHeldMap(h map[Resource]Mode) {
	if len(s.heldFree) < maxFree {
		s.heldFree = append(s.heldFree, h)
	}
}

func (s *shard) newEdgeSet() map[id.Txn]bool {
	if n := len(s.edgeFree); n > 0 {
		e := s.edgeFree[n-1]
		s.edgeFree = s.edgeFree[:n-1]
		return e
	}
	return make(map[id.Txn]bool, 4)
}

func (s *shard) freeEdges(txn id.Txn) {
	e, ok := s.waits[txn]
	if !ok {
		return
	}
	delete(s.waits, txn)
	if len(s.edgeFree) < maxFree {
		clear(e)
		s.edgeFree = append(s.edgeFree, e)
	}
}
