package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
)

// Resource names a lockable object: a whole tree (Key == "") or one key
// within a tree.
type Resource struct {
	Tree id.Tree
	Key  string
}

// TreeResource returns the whole-tree resource (for intention and escalated
// locks).
func TreeResource(t id.Tree) Resource { return Resource{Tree: t} }

// KeyResource returns the resource for one key of a tree.
func KeyResource(t id.Tree, key []byte) Resource {
	return Resource{Tree: t, Key: string(key)}
}

// String renders the resource for errors and traces.
func (r Resource) String() string {
	if r.Key == "" {
		return r.Tree.String()
	}
	return fmt.Sprintf("%s[%x]", r.Tree, r.Key)
}

// Errors returned by Lock.
var (
	// ErrDeadlock aborts the requester chosen as deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout reports that the lock wait exceeded its timeout.
	ErrTimeout = errors.New("lock: wait timed out")
)

// Stats are cumulative lock-manager counters, read with Snapshot.
type Stats struct {
	Requests  int64 // total Lock calls
	Waits     int64 // calls that blocked
	Deadlocks int64 // requests aborted as deadlock victims
	Timeouts  int64 // requests aborted by timeout
}

// request is one waiting lock request.
type request struct {
	txn     id.Txn
	mode    Mode // target mode (already the sup for conversions)
	convert bool // the txn already holds the resource in a weaker mode
	granted chan error
}

// lockState is the queue and grant table for one resource.
type lockState struct {
	granted map[id.Txn]Mode
	queue   []*request
}

// Manager is the lock manager. One instance serves a whole database.
type Manager struct {
	mu     sync.Mutex
	table  map[Resource]*lockState
	held   map[id.Txn]map[Resource]Mode // reverse index for ReleaseAll
	waits  map[id.Txn]map[id.Txn]bool   // waits-for graph
	wanted map[id.Txn]*request          // the single request a txn may be blocked on

	requests  atomic.Int64
	waitCount atomic.Int64
	deadlocks atomic.Int64
	timeouts  atomic.Int64

	// DefaultTimeout bounds waits when Lock is called with timeout 0.
	DefaultTimeout time.Duration
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		table:          make(map[Resource]*lockState),
		held:           make(map[id.Txn]map[Resource]Mode),
		waits:          make(map[id.Txn]map[id.Txn]bool),
		wanted:         make(map[id.Txn]*request),
		DefaultTimeout: 10 * time.Second,
	}
}

// Snapshot returns the cumulative counters.
func (m *Manager) Snapshot() Stats {
	return Stats{
		Requests:  m.requests.Load(),
		Waits:     m.waitCount.Load(),
		Deadlocks: m.deadlocks.Load(),
		Timeouts:  m.timeouts.Load(),
	}
}

// Lock acquires res in mode for txn, blocking until granted, deadlock, or
// timeout (0 means DefaultTimeout). Re-requests in covered modes return
// immediately; stronger modes convert. Conversions wait ahead of new
// requests.
func (m *Manager) Lock(txn id.Txn, res Resource, mode Mode, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = m.DefaultTimeout
	}
	m.requests.Add(1)

	m.mu.Lock()
	ls := m.table[res]
	if ls == nil {
		ls = &lockState{granted: make(map[id.Txn]Mode)}
		m.table[res] = ls
	}
	cur := ls.granted[txn]
	target := Sup(cur, mode)
	if cur != ModeNone && target == cur {
		m.mu.Unlock()
		return nil // already covered
	}
	convert := cur != ModeNone
	if m.grantable(ls, txn, target) && (convert || m.noEarlierWaiter(ls)) {
		m.grant(ls, txn, res, target)
		m.mu.Unlock()
		return nil
	}

	// Must wait.
	req := &request{txn: txn, mode: target, convert: convert, granted: make(chan error, 1)}
	if convert {
		// Conversions queue ahead of non-conversions.
		i := 0
		for i < len(ls.queue) && ls.queue[i].convert {
			i++
		}
		ls.queue = append(ls.queue, nil)
		copy(ls.queue[i+1:], ls.queue[i:])
		ls.queue[i] = req
	} else {
		ls.queue = append(ls.queue, req)
	}
	m.wanted[txn] = req
	m.rebuildEdges(res, ls)
	if m.cycleFrom(txn) {
		m.deadlocks.Add(1)
		m.dropRequest(res, ls, req)
		m.mu.Unlock()
		return fmt.Errorf("%w: %s requesting %s on %s", ErrDeadlock, txn, target, res)
	}
	m.waitCount.Add(1)
	m.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-req.granted:
		return err
	case <-timer.C:
		m.mu.Lock()
		// The grant may have raced the timer.
		select {
		case err := <-req.granted:
			m.mu.Unlock()
			return err
		default:
		}
		m.timeouts.Add(1)
		m.dropRequest(res, ls, req)
		m.mu.Unlock()
		return fmt.Errorf("%w: %s requesting %s on %s", ErrTimeout, txn, target, res)
	}
}

// grantable reports whether txn may hold res in mode given current grants
// (ignoring txn's own current grant, which a conversion replaces).
func (m *Manager) grantable(ls *lockState, txn id.Txn, mode Mode) bool {
	for holder, held := range ls.granted {
		if holder == txn {
			continue
		}
		if !Compatible(held, mode) {
			return false
		}
	}
	return true
}

// noEarlierWaiter reports whether the queue has no waiting request that a
// new (non-conversion) request must respect under FIFO fairness.
func (m *Manager) noEarlierWaiter(ls *lockState) bool { return len(ls.queue) == 0 }

func (m *Manager) grant(ls *lockState, txn id.Txn, res Resource, mode Mode) {
	ls.granted[txn] = mode
	h := m.held[txn]
	if h == nil {
		h = make(map[Resource]Mode)
		m.held[txn] = h
	}
	h[res] = mode
}

// dropRequest removes a waiting request (victim or timeout) and re-runs the
// grant scan, since the drop may unblock others.
func (m *Manager) dropRequest(res Resource, ls *lockState, req *request) {
	for i, r := range ls.queue {
		if r == req {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			break
		}
	}
	if m.wanted[req.txn] == req {
		delete(m.wanted, req.txn)
		delete(m.waits, req.txn)
	}
	m.scan(res, ls)
}

// scan grants queued requests in order, stopping at the first that cannot
// proceed, then refreshes the waits-for edges of the remainder.
func (m *Manager) scan(res Resource, ls *lockState) {
	for len(ls.queue) > 0 {
		req := ls.queue[0]
		if !m.grantable(ls, req.txn, req.mode) {
			break
		}
		ls.queue = ls.queue[1:]
		m.grant(ls, req.txn, res, req.mode)
		if m.wanted[req.txn] == req {
			delete(m.wanted, req.txn)
			delete(m.waits, req.txn)
		}
		req.granted <- nil
	}
	m.rebuildEdges(res, ls)
	m.gcState(res, ls)
}

// rebuildEdges recomputes waits-for edges for every waiter on res: a waiter
// waits for incompatible grant holders and for every earlier waiter.
func (m *Manager) rebuildEdges(res Resource, ls *lockState) {
	for i, req := range ls.queue {
		edges := make(map[id.Txn]bool)
		for holder, held := range ls.granted {
			if holder != req.txn && !Compatible(held, req.mode) {
				edges[holder] = true
			}
		}
		for j := 0; j < i; j++ {
			if ls.queue[j].txn != req.txn {
				edges[ls.queue[j].txn] = true
			}
		}
		m.waits[req.txn] = edges
	}
}

// cycleFrom reports whether the waits-for graph has a cycle reachable from
// start that returns to start.
func (m *Manager) cycleFrom(start id.Txn) bool {
	seen := map[id.Txn]bool{}
	var dfs func(t id.Txn) bool
	dfs = func(t id.Txn) bool {
		for next := range m.waits[t] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

func (m *Manager) gcState(res Resource, ls *lockState) {
	if len(ls.granted) == 0 && len(ls.queue) == 0 {
		delete(m.table, res)
	}
}

// Unlock releases txn's lock on res (used by system transactions, which hold
// short locks). It is a no-op when nothing is held.
func (m *Manager) Unlock(txn id.Txn, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.release(txn, res)
}

func (m *Manager) release(txn id.Txn, res Resource) {
	ls := m.table[res]
	if ls == nil {
		return
	}
	if _, ok := ls.granted[txn]; !ok {
		return
	}
	delete(ls.granted, txn)
	if h := m.held[txn]; h != nil {
		delete(h, res)
		if len(h) == 0 {
			delete(m.held, txn)
		}
	}
	m.scan(res, ls)
}

// ReleaseAll releases every lock txn holds (commit or abort).
func (m *Manager) ReleaseAll(txn id.Txn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.held[txn]
	if h == nil {
		return
	}
	resources := make([]Resource, 0, len(h))
	for res := range h {
		resources = append(resources, res)
	}
	for _, res := range resources {
		m.release(txn, res)
	}
}

// HeldMode returns the mode txn currently holds on res.
func (m *Manager) HeldMode(txn id.Txn, res Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.held[txn]; h != nil {
		return h[res]
	}
	return ModeNone
}

// CountKeyLocks counts the key-granular locks txn holds within tree; the
// engine consults it for lock escalation.
func (m *Manager) CountKeyLocks(txn id.Txn, tree id.Tree) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for res := range m.held[txn] {
		if res.Tree == tree && res.Key != "" {
			n++
		}
	}
	return n
}

// ReleaseKeyLocks drops every key-granular lock txn holds within tree; used
// after escalation replaced them with a tree lock.
func (m *Manager) ReleaseKeyLocks(txn id.Txn, tree id.Tree) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var drop []Resource
	for res := range m.held[txn] {
		if res.Tree == tree && res.Key != "" {
			drop = append(drop, res)
		}
	}
	for _, res := range drop {
		m.release(txn, res)
	}
}
