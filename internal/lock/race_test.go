//go:build race

package lock

// raceEnabled reports that this test binary was built with the race
// detector, which slows goroutine scheduling enough that the suite's
// settle windows need stretching.
const raceEnabled = true
