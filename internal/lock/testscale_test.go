package lock

import (
	"os"
	"strconv"
	"time"
)

// testScale stretches the suite's settle sleeps and short timeouts. The
// timings below are tuned for an idle machine; under the race detector or a
// loaded CI runner a goroutine can need several times longer to park in a
// lock queue, which turned these tests flaky. One multiplier fixes them all
// without slowing ordinary local runs. LOCK_TEST_SCALE overrides it.
var testScale = func() time.Duration {
	if s := os.Getenv("LOCK_TEST_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n)
		}
	}
	if raceEnabled {
		return 4
	}
	return 1
}()

// settle sleeps d scaled: long enough for goroutines started before the call
// to reach their blocking point.
func settle(d time.Duration) { time.Sleep(d * testScale) }

// scaled stretches a deliberately short timeout for slow environments.
func scaled(d time.Duration) time.Duration { return d * testScale }
