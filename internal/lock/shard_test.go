package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/id"
)

// pickCrossShard returns two key resources that hash to different shards.
func pickCrossShard(t *testing.T, m *Manager) (Resource, Resource) {
	t.Helper()
	a := KeyResource(1, []byte("anchor"))
	for i := 0; i < 10_000; i++ {
		b := KeyResource(2, []byte(fmt.Sprintf("probe-%d", i)))
		if m.shardIndex(a) != m.shardIndex(b) {
			return a, b
		}
	}
	t.Fatal("could not find resources in distinct shards")
	return Resource{}, Resource{}
}

// TestCrossShardDeadlock builds the two-txn, two-resource cycle with the
// resources in different shards, so no single shard's state contains the
// whole cycle — only the background detector's merged snapshot can see it.
func TestCrossShardDeadlock(t *testing.T) {
	m := NewManagerOpts(Options{Shards: 8, SweepInterval: time.Millisecond})
	defer m.Close()
	r1, r2 := pickCrossShard(t, m)

	if err := m.Lock(1, r1, ModeX, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, r2, ModeX, time.Second); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	go func() { errs <- m.Lock(1, r2, ModeX, 5*time.Second) }()
	settle(20 * time.Millisecond) // let txn 1 block first
	go func() { errs <- m.Lock(2, r1, ModeX, 5*time.Second) }()

	first := <-errs
	if !errors.Is(first, ErrDeadlock) {
		t.Fatalf("expected deadlock abort first, got %v", first)
	}
	// The victim must be the younger transaction (2).
	if got := first.Error(); got == "" || !errors.Is(first, ErrDeadlock) {
		t.Fatalf("bad victim error: %v", first)
	}
	m.ReleaseAll(2) // victim aborts, releasing r2
	if err := <-errs; err != nil {
		t.Fatalf("survivor should be granted after victim abort, got %v", err)
	}
	m.ReleaseAll(1)
	if st := m.Snapshot(); st.Deadlocks != 1 {
		t.Fatalf("expected 1 deadlock, stats say %d", st.Deadlocks)
	}
}

// TestConversionPriorityAcrossShards runs the conversion-vs-new-waiter
// ordering check concurrently on resources in two different shards: a
// queued S→X conversion must be granted before an X waiter that arrived
// earlier, on both resources independently.
func TestConversionPriorityAcrossShards(t *testing.T) {
	m := NewManagerOpts(Options{Shards: 8})
	defer m.Close()
	r1, r2 := pickCrossShard(t, m)

	var wg sync.WaitGroup
	for i, res := range []Resource{r1, r2} {
		wg.Add(1)
		go func(base id.Txn, res Resource) {
			defer wg.Done()
			tHold, tConv, tNew := base, base+1, base+2
			if err := m.Lock(tHold, res, ModeS, time.Second); err != nil {
				t.Error(err)
				return
			}
			if err := m.Lock(tConv, res, ModeS, time.Second); err != nil {
				t.Error(err)
				return
			}
			var order []id.Txn
			var mu sync.Mutex
			done := make(chan struct{}, 2)
			go func() { // new X waiter queues first
				if err := m.Lock(tNew, res, ModeX, 5*time.Second); err == nil {
					mu.Lock()
					order = append(order, tNew)
					mu.Unlock()
					m.ReleaseAll(tNew)
				}
				done <- struct{}{}
			}()
			settle(20 * time.Millisecond)
			go func() { // conversion arrives second but must win
				if err := m.Lock(tConv, res, ModeX, 5*time.Second); err == nil {
					mu.Lock()
					order = append(order, tConv)
					mu.Unlock()
					m.ReleaseAll(tConv)
				}
				done <- struct{}{}
			}()
			settle(20 * time.Millisecond)
			m.ReleaseAll(tHold) // unblocks the queue
			<-done
			<-done
			mu.Lock()
			defer mu.Unlock()
			if len(order) != 2 || order[0] != tConv || order[1] != tNew {
				t.Errorf("res %s: want grant order [%d %d], got %v", res, tConv, tNew, order)
			}
		}(id.Txn(1+i*100), res)
	}
	wg.Wait()
}

// TestTimeoutVsGrantRace races the wait timer against the grant: the holder
// releases at roughly the waiter's timeout. Whatever Lock reports must match
// the lock table — nil means the waiter holds the mode, timeout means it
// holds nothing and no state leaks.
func TestTimeoutVsGrantRace(t *testing.T) {
	m := NewManagerOpts(Options{Shards: 4})
	defer m.Close()
	res := KeyResource(9, []byte("raced"))
	for i := 0; i < 200; i++ {
		holder := id.Txn(2*i + 1)
		waiter := id.Txn(2*i + 2)
		if err := m.Lock(holder, res, ModeX, time.Second); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- m.Lock(waiter, res, ModeX, scaled(time.Millisecond)) }()
		settle(time.Millisecond) // land the release right on the timeout
		m.ReleaseAll(holder)
		err := <-done
		if err == nil {
			if got := m.HeldMode(waiter, res); got != ModeX {
				t.Fatalf("iter %d: grant reported but holds %v", i, got)
			}
			m.ReleaseAll(waiter)
		} else {
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("iter %d: unexpected error %v", i, err)
			}
			if got := m.HeldMode(waiter, res); got != ModeNone {
				t.Fatalf("iter %d: timeout reported but holds %v", i, got)
			}
		}
	}
	if resources, holders := m.residentState(); resources != 0 || holders != 0 {
		t.Fatalf("leaked state: %d resources, %d holders", resources, holders)
	}
}

// TestIncrementalEdgesMatchRebuild stresses mixed lock traffic and checks
// after every round that the incrementally-maintained waits-for edges equal
// a from-scratch rebuild.
func TestIncrementalEdgesMatchRebuild(t *testing.T) {
	m := NewManagerOpts(Options{Shards: 4, SweepInterval: time.Millisecond})
	defer m.Close()
	modes := []Mode{ModeS, ModeX, ModeE, ModeU}
	var wg sync.WaitGroup
	var stopFlag atomic.Bool
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := id.Txn(1 + g*1_000_000)
			for i := 0; !stopFlag.Load(); i++ {
				txn++
				mode := modes[(g+i)%len(modes)]
				res := KeyResource(id.Tree(i%3), []byte{byte(i % 5)})
				if m.Lock(txn, res, mode, 5*time.Millisecond) == nil {
					// Occasionally convert to force conversion-queue edges.
					if i%7 == 0 {
						m.Lock(txn, res, ModeX, 5*time.Millisecond)
					}
				}
				m.ReleaseAll(txn)
			}
		}(g)
	}
	deadline := time.After(500 * time.Millisecond)
	for {
		select {
		case <-deadline:
			stopFlag.Store(true)
			wg.Wait()
			if msg := m.checkEdgeConsistency(); msg != "" {
				t.Fatal(msg)
			}
			return
		default:
			if msg := m.checkEdgeConsistency(); msg != "" {
				stopFlag.Store(true)
				wg.Wait()
				t.Fatal(msg)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
