package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/id"
)

var res1 = KeyResource(1, []byte("a"))

func TestCompatibilityMatrix(t *testing.T) {
	type pair struct{ a, b Mode }
	compat := map[pair]bool{
		{ModeIS, ModeIS}: true, {ModeIS, ModeIX}: true, {ModeIS, ModeS}: true,
		{ModeIS, ModeU}: true, {ModeIS, ModeX}: false, {ModeIS, ModeE}: true,
		{ModeIX, ModeIX}: true, {ModeIX, ModeS}: false, {ModeIX, ModeU}: false,
		{ModeIX, ModeX}: false, {ModeIX, ModeE}: true,
		{ModeS, ModeS}: true, {ModeS, ModeU}: true, {ModeS, ModeX}: false, {ModeS, ModeE}: false,
		{ModeU, ModeU}: false, {ModeU, ModeX}: false, {ModeU, ModeE}: false,
		{ModeX, ModeX}: false, {ModeX, ModeE}: false,
		{ModeE, ModeE}: true,
	}
	for p, want := range compat {
		if got := Compatible(p.a, p.b); got != want {
			t.Errorf("Compatible(%s,%s) = %v, want %v", p.a, p.b, got, want)
		}
		// The matrix is symmetric.
		if got := Compatible(p.b, p.a); got != want {
			t.Errorf("Compatible(%s,%s) = %v, want %v (symmetry)", p.b, p.a, got, want)
		}
	}
	for _, m := range []Mode{ModeIS, ModeIX, ModeS, ModeU, ModeX, ModeE} {
		if !Compatible(ModeNone, m) || !Compatible(m, ModeNone) {
			t.Errorf("ModeNone should be compatible with %s", m)
		}
	}
}

func TestSupLattice(t *testing.T) {
	modes := []Mode{ModeNone, ModeIS, ModeIX, ModeS, ModeU, ModeX, ModeE}
	for _, a := range modes {
		for _, b := range modes {
			s := Sup(a, b)
			if Sup(a, b) != Sup(b, a) {
				t.Errorf("Sup(%s,%s) not commutative", a, b)
			}
			if Sup(a, a) != a {
				t.Errorf("Sup(%s,%s) != %s", a, a, a)
			}
			// The sup must be at least as restrictive as both inputs: any
			// mode incompatible with a or b is incompatible with s.
			for _, other := range modes {
				if other == ModeNone {
					continue
				}
				if (!Compatible(other, a) || !Compatible(other, b)) && Compatible(other, s) {
					t.Errorf("Sup(%s,%s)=%s weaker than inputs vs %s", a, b, s, other)
				}
			}
			if !Covers(s, a) || !Covers(s, b) {
				t.Errorf("Sup(%s,%s)=%s does not cover inputs", a, b, s)
			}
		}
	}
}

func TestGrantAndRelease(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res1, ModeS, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, res1, ModeS, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(1, res1); got != ModeS {
		t.Fatalf("held mode = %s", got)
	}
	// Re-request covered mode is a no-op.
	if err := m.Lock(1, res1, ModeIS, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(1, res1); got != ModeS {
		t.Fatalf("held mode after covered re-request = %s", got)
	}
	m.ReleaseAll(1)
	if got := m.HeldMode(1, res1); got != ModeNone {
		t.Fatalf("held after release = %s", got)
	}
	m.ReleaseAll(2)
}

func TestXBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, res1, ModeX, 0); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Lock(2, res1, ModeX, time.Second) }()
	select {
	case err := <-acquired:
		t.Fatalf("second X granted while first held: %v", err)
	case <-time.After(scaled(30 * time.Millisecond)):
	}
	m.ReleaseAll(1)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
}

func TestEscrowConcurrentGrants(t *testing.T) {
	m := NewManager()
	for txn := id.Txn(1); txn <= 32; txn++ {
		if err := m.Lock(txn, res1, ModeE, time.Second); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
	}
	// A reader (S) must block while escrow holders exist.
	blocked := make(chan error, 1)
	go func() { blocked <- m.Lock(100, res1, ModeS, time.Second) }()
	select {
	case err := <-blocked:
		t.Fatalf("S granted alongside E: %v", err)
	case <-time.After(scaled(30 * time.Millisecond)):
	}
	for txn := id.Txn(1); txn <= 32; txn++ {
		m.ReleaseAll(txn)
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestTimeout(t *testing.T) {
	m := NewManager()
	m.Lock(1, res1, ModeX, 0)
	err := m.Lock(2, res1, ModeS, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	st := m.Snapshot()
	if st.Timeouts != 1 || st.Waits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// After the timeout the queue is clean: a new compatible request works.
	m.ReleaseAll(1)
	if err := m.Lock(3, res1, ModeX, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	resA := KeyResource(1, []byte("a"))
	resB := KeyResource(1, []byte("b"))
	m.Lock(1, resA, ModeX, 0)
	m.Lock(2, resB, ModeX, 0)

	done1 := make(chan error, 1)
	go func() { done1 <- m.Lock(1, resB, ModeX, 2*time.Second) }()
	settle(30 * time.Millisecond) // let txn 1 block
	err2 := m.Lock(2, resA, ModeX, 2*time.Second)
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("txn 2 err = %v, want deadlock", err2)
	}
	// Victim aborts, releasing its locks; txn 1 proceeds.
	m.ReleaseAll(2)
	if err := <-done1; err != nil {
		t.Fatalf("txn 1 err = %v", err)
	}
	if m.Snapshot().Deadlocks != 1 {
		t.Fatalf("deadlock count = %d", m.Snapshot().Deadlocks)
	}
}

func TestThreePartyDeadlockChain(t *testing.T) {
	// A cycle through three transactions: 1→2→3→1. The last blocker (txn 3)
	// completes the cycle and must be chosen as victim.
	m := NewManager()
	resA := KeyResource(1, []byte("a"))
	resB := KeyResource(1, []byte("b"))
	resC := KeyResource(1, []byte("c"))
	m.Lock(1, resA, ModeX, 0)
	m.Lock(2, resB, ModeX, 0)
	m.Lock(3, resC, ModeX, 0)

	d1 := make(chan error, 1)
	go func() { d1 <- m.Lock(1, resB, ModeX, 3*time.Second) }() // 1 waits on 2
	settle(30 * time.Millisecond)
	d2 := make(chan error, 1)
	go func() { d2 <- m.Lock(2, resC, ModeX, 3*time.Second) }() // 2 waits on 3
	settle(30 * time.Millisecond)
	err3 := m.Lock(3, resA, ModeX, 3*time.Second) // closes the cycle
	if !errors.Is(err3, ErrDeadlock) {
		t.Fatalf("txn 3 err = %v, want deadlock", err3)
	}
	m.ReleaseAll(3)
	if err := <-d2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestSeparateNamespacesDoNotConflict(t *testing.T) {
	// Resources are exact byte strings: a key and a prefixed variant of the
	// same key (the engine's gap namespace) never conflict.
	m := NewManager()
	row := KeyResource(1, []byte("k"))
	gap := KeyResource(1, append([]byte{0x01}, []byte("k")...))
	if err := m.Lock(1, row, ModeX, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, gap, ModeX, 0); err != nil {
		t.Fatalf("gap lock blocked by row lock: %v", err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}

func TestConversionDeadlock(t *testing.T) {
	// Two S holders both converting to X is the classic conversion deadlock.
	m := NewManager()
	m.Lock(1, res1, ModeS, 0)
	m.Lock(2, res1, ModeS, 0)
	done1 := make(chan error, 1)
	go func() { done1 <- m.Lock(1, res1, ModeX, 2*time.Second) }()
	settle(30 * time.Millisecond)
	err2 := m.Lock(2, res1, ModeX, 2*time.Second)
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err2)
	}
	m.ReleaseAll(2)
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, res1) != ModeX {
		t.Fatal("txn 1 did not convert to X")
	}
}

func TestUpgradePriorityOverNewRequests(t *testing.T) {
	m := NewManager()
	m.Lock(1, res1, ModeS, 0)
	m.Lock(2, res1, ModeS, 0)
	// Txn 3 queues for X behind the two S holders.
	got3 := make(chan error, 1)
	go func() { got3 <- m.Lock(3, res1, ModeX, 2*time.Second) }()
	settle(30 * time.Millisecond)
	// Txn 2 converts S->X: must be queued ahead of txn 3.
	got2 := make(chan error, 1)
	go func() { got2 <- m.Lock(2, res1, ModeX, 2*time.Second) }()
	settle(30 * time.Millisecond)
	m.ReleaseAll(1)
	if err := <-got2; err != nil {
		t.Fatalf("conversion failed: %v", err)
	}
	select {
	case err := <-got3:
		t.Fatalf("new X granted before conversion finished: %v", err)
	default:
	}
	m.ReleaseAll(2)
	if err := <-got3; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestFIFOFairness(t *testing.T) {
	// A stream of S requests must not starve a waiting X.
	m := NewManager()
	m.Lock(1, res1, ModeS, 0)
	gotX := make(chan error, 1)
	go func() { gotX <- m.Lock(2, res1, ModeX, 2*time.Second) }()
	settle(20 * time.Millisecond)
	// New S requests arrive while X waits; they must queue behind it.
	gotS := make(chan error, 1)
	go func() { gotS <- m.Lock(3, res1, ModeS, 2*time.Second) }()
	settle(20 * time.Millisecond)
	select {
	case <-gotS:
		t.Fatal("late S overtook waiting X")
	default:
	}
	m.ReleaseAll(1)
	if err := <-gotX; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-gotS; err != nil {
		t.Fatal(err)
	}
}

func TestUnlockSingleResource(t *testing.T) {
	m := NewManager()
	resB := KeyResource(1, []byte("b"))
	m.Lock(1, res1, ModeX, 0)
	m.Lock(1, resB, ModeX, 0)
	m.Unlock(1, res1)
	if m.HeldMode(1, res1) != ModeNone || m.HeldMode(1, resB) != ModeX {
		t.Fatal("Unlock released wrong resource")
	}
	// Unlock of something not held is a no-op.
	m.Unlock(2, res1)
	m.Unlock(1, KeyResource(9, []byte("zz")))
	m.ReleaseAll(1)
}

func TestCountAndReleaseKeyLocks(t *testing.T) {
	m := NewManager()
	for i := 0; i < 5; i++ {
		m.Lock(1, KeyResource(7, []byte{byte(i)}), ModeX, 0)
	}
	m.Lock(1, TreeResource(7), ModeIX, 0)
	m.Lock(1, KeyResource(8, []byte("other")), ModeX, 0)
	if got := m.CountKeyLocks(1, 7); got != 5 {
		t.Fatalf("CountKeyLocks = %d", got)
	}
	m.ReleaseKeyLocks(1, 7)
	if got := m.CountKeyLocks(1, 7); got != 0 {
		t.Fatalf("after release, CountKeyLocks = %d", got)
	}
	if m.HeldMode(1, TreeResource(7)) != ModeIX {
		t.Fatal("tree lock dropped by ReleaseKeyLocks")
	}
	if m.HeldMode(1, KeyResource(8, []byte("other"))) != ModeX {
		t.Fatal("other tree's key lock dropped")
	}
	m.ReleaseAll(1)
}

// TestStressNoIncompatibleGrants hammers the manager from many goroutines and
// verifies the core safety property: no two incompatible locks are ever
// granted simultaneously. An X holder flips a shared counter that escrow/S
// holders inspect.
func TestStressNoIncompatibleGrants(t *testing.T) {
	m := NewManager()
	res := KeyResource(1, []byte("hot"))
	var exclusive atomic.Int32
	var sharedHolders atomic.Int32
	var wg sync.WaitGroup
	var violations atomic.Int32
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := id.Txn(g + 1)
			for i := 0; i < 300; i++ {
				switch g % 3 {
				case 0: // X
					if err := m.Lock(txn, res, ModeX, 5*time.Second); err != nil {
						continue
					}
					if sharedHolders.Load() != 0 || exclusive.Add(1) != 1 {
						violations.Add(1)
					}
					exclusive.Add(-1)
					m.ReleaseAll(txn)
				case 1: // S
					if err := m.Lock(txn, res, ModeS, 5*time.Second); err != nil {
						continue
					}
					sharedHolders.Add(1)
					if exclusive.Load() != 0 {
						violations.Add(1)
					}
					sharedHolders.Add(-1)
					m.ReleaseAll(txn)
				default: // E
					if err := m.Lock(txn, res, ModeE, 5*time.Second); err != nil {
						continue
					}
					sharedHolders.Add(1)
					if exclusive.Load() != 0 {
						violations.Add(1)
					}
					sharedHolders.Add(-1)
					m.ReleaseAll(txn)
				}
			}
		}(g)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d incompatible co-grants observed", v)
	}
	// The lock table must be empty at the end.
	resources, holders := m.residentState()
	if resources != 0 || holders != 0 {
		t.Fatalf("leaked state: %d resources, %d holders", resources, holders)
	}
}

func TestResourceString(t *testing.T) {
	if s := TreeResource(3).String(); s != "tree-3" {
		t.Fatalf("tree resource string = %q", s)
	}
	if s := KeyResource(3, []byte{0xAB}).String(); s != "tree-3[ab]" {
		t.Fatalf("key resource string = %q", s)
	}
}

func BenchmarkUncontendedLockRelease(b *testing.B) {
	m := NewManager()
	res := KeyResource(1, []byte("k"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := id.Txn(i + 1)
		m.Lock(txn, res, ModeX, 0)
		m.ReleaseAll(txn)
	}
}

func BenchmarkEscrowSharedGrant(b *testing.B) {
	m := NewManager()
	res := KeyResource(1, []byte("hot"))
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			txn := id.Txn(next.Add(1))
			m.Lock(txn, res, ModeE, 0)
			m.ReleaseAll(txn)
		}
	})
}
