package lock

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/id"
)

// Microbenchmarks for the lock-manager hot paths (ISSUE 1). Run with
//
//	go test -bench='Uncontended|HotKey|ReleaseAll' -benchmem ./internal/lock
//
// Before/after numbers for the striped manager are recorded in
// EXPERIMENTS.md.

// BenchmarkUncontendedParallelDistinctKeys is the sharding headline: many
// goroutines acquire and release locks on distinct resources. Under the
// global-mutex manager every acquire serializes; a striped manager keeps
// them independent.
func BenchmarkUncontendedParallelDistinctKeys(b *testing.B) {
	m := NewManager()
	defer m.Close()
	var nextG atomic.Uint64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		g := nextG.Add(1)
		res := KeyResource(id.Tree(g), []byte(fmt.Sprintf("key-%d", g)))
		txn := id.Txn(g * 1_000_000_000)
		for pb.Next() {
			txn++
			m.Lock(txn, res, ModeX, time.Second)
			m.ReleaseAll(txn)
		}
	})
}

// BenchmarkHotKeyEscrowParallel hammers one escrow-locked resource from many
// goroutines: E is self-compatible, so every acquire is a grant — the cost
// is pure lock-manager bookkeeping on one hot lockState.
func BenchmarkHotKeyEscrowParallel(b *testing.B) {
	m := NewManager()
	defer m.Close()
	res := KeyResource(1, []byte("hot"))
	var next atomic.Uint64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			txn := id.Txn(next.Add(1))
			m.Lock(txn, res, ModeE, time.Second)
			m.ReleaseAll(txn)
		}
	})
}

// BenchmarkReleaseAllManyLocks measures commit-time bulk release: one
// transaction holding locks on many distinct keys of one tree.
func BenchmarkReleaseAllManyLocks(b *testing.B) {
	const held = 64
	m := NewManager()
	defer m.Close()
	keys := make([][]byte, held)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := id.Txn(i + 1)
		for _, k := range keys {
			m.Lock(txn, KeyResource(7, k), ModeX, time.Second)
		}
		m.ReleaseAll(txn)
	}
}

// BenchmarkContendedXHandoff measures the blocked path: pairs of goroutines
// fighting over per-pair X resources, so every other acquire waits and the
// grant travels through the queue/scan machinery.
func BenchmarkContendedXHandoff(b *testing.B) {
	m := NewManager()
	defer m.Close()
	var nextG atomic.Uint64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		g := nextG.Add(1)
		res := KeyResource(id.Tree(g/2), []byte{byte(g / 2)})
		txn := id.Txn(g * 1_000_000_000)
		for pb.Next() {
			txn++
			if err := m.Lock(txn, res, ModeX, 10*time.Second); err != nil {
				b.Error(err)
				return
			}
			m.ReleaseAll(txn)
		}
	})
}
