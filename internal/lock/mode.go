// Package lock implements the lock manager: multi-granularity lock modes
// (IS, IX, S, U, X) extended with the paper's escrow mode E (the "IncDec"
// lock), FIFO queueing with conversion priority, waits-for deadlock
// detection, timeouts, and lock-escalation accounting.
//
// E is the heart of the paper's concurrency contribution: increments and
// decrements of SUM/COUNT aggregates commute, so E is compatible with E (and
// with intention modes) while conflicting with S, U, and X. Many writers may
// therefore update the same aggregate view row concurrently, while readers
// who need a stable value still conflict.
package lock

// Mode is a lock mode.
type Mode uint8

// Lock modes, weakest to strongest along the upgrade lattice.
const (
	// ModeNone is the absence of a lock.
	ModeNone Mode = iota
	// ModeIS is intention-shared, taken on a tree before S key locks.
	ModeIS
	// ModeIX is intention-exclusive, taken on a tree before X/E key locks.
	ModeIX
	// ModeS is shared.
	ModeS
	// ModeU is update: read now with intent to upgrade to X; compatible
	// with S but not with another U (prevents upgrade deadlocks).
	ModeU
	// ModeX is exclusive.
	ModeX
	// ModeE is the escrow (IncDec) mode: compatible with itself and with
	// intention modes, incompatible with S, U, and X.
	ModeE
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "-"
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeU:
		return "U"
	case ModeX:
		return "X"
	case ModeE:
		return "E"
	default:
		return "?"
	}
}

// compatible[a][b] reports whether a granted lock in mode a coexists with a
// request in mode b.
var compatible = [8][8]bool{
	ModeIS: {ModeIS: true, ModeIX: true, ModeS: true, ModeU: true, ModeX: false, ModeE: true},
	ModeIX: {ModeIS: true, ModeIX: true, ModeS: false, ModeU: false, ModeX: false, ModeE: true},
	ModeS:  {ModeIS: true, ModeIX: false, ModeS: true, ModeU: true, ModeX: false, ModeE: false},
	ModeU:  {ModeIS: true, ModeIX: false, ModeS: true, ModeU: false, ModeX: false, ModeE: false},
	ModeX:  {},
	ModeE:  {ModeIS: true, ModeIX: true, ModeS: false, ModeU: false, ModeX: false, ModeE: true},
}

// Compatible reports whether a granted lock in mode a coexists with a
// request in mode b. ModeNone is compatible with everything.
func Compatible(a, b Mode) bool {
	if a == ModeNone || b == ModeNone {
		return true
	}
	return compatible[a][b]
}

// sup[a][b] is the least mode at least as strong as both a and b: the mode a
// holder converts to when it re-requests in a different mode.
var sup = [8][8]Mode{
	ModeNone: {ModeNone: ModeNone, ModeIS: ModeIS, ModeIX: ModeIX, ModeS: ModeS, ModeU: ModeU, ModeX: ModeX, ModeE: ModeE},
	ModeIS:   {ModeNone: ModeIS, ModeIS: ModeIS, ModeIX: ModeIX, ModeS: ModeS, ModeU: ModeU, ModeX: ModeX, ModeE: ModeE},
	ModeIX:   {ModeNone: ModeIX, ModeIS: ModeIX, ModeIX: ModeIX, ModeS: ModeX, ModeU: ModeX, ModeX: ModeX, ModeE: ModeE},
	ModeS:    {ModeNone: ModeS, ModeIS: ModeS, ModeIX: ModeX, ModeS: ModeS, ModeU: ModeU, ModeX: ModeX, ModeE: ModeX},
	ModeU:    {ModeNone: ModeU, ModeIS: ModeU, ModeIX: ModeX, ModeS: ModeU, ModeU: ModeU, ModeX: ModeX, ModeE: ModeX},
	ModeX:    {ModeNone: ModeX, ModeIS: ModeX, ModeIX: ModeX, ModeS: ModeX, ModeU: ModeX, ModeX: ModeX, ModeE: ModeX},
	ModeE:    {ModeNone: ModeE, ModeIS: ModeE, ModeIX: ModeE, ModeS: ModeX, ModeU: ModeX, ModeX: ModeX, ModeE: ModeE},
}

// Sup returns the least mode at least as strong as both a and b.
func Sup(a, b Mode) Mode { return sup[a][b] }

// Covers reports whether holding mode a already satisfies a request for b.
func Covers(a, b Mode) bool { return Sup(a, b) == a }
