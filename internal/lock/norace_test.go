//go:build !race

package lock

// raceEnabled reports whether this test binary was built with the race
// detector.
const raceEnabled = false
