package lock

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/id"
)

// Background deadlock detection (ISSUE 1). The old manager ran a waits-for
// DFS inline, under the global mutex, on every blocked request. With the
// lock table striped the waits-for graph spans shards, so detection moves
// off the acquire path entirely: a blocked request just queues and kicks the
// detector goroutine, which takes a consistent snapshot of every shard's
// wait edges, finds cycles, and aborts the youngest transaction of each
// cycle (SQL Server style — the youngest has done the least work).
//
// A sweep locks all shards in index order, so the graph it sees is globally
// consistent: a cycle in that snapshot is a genuine deadlock, because no
// member can make progress while the sweep holds the locks. Sweeps run at
// most once per SweepInterval and only while waiters exist, so the cost is
// bounded and the uncontended path never pays it.

// kickDetector nudges the detector after a request blocks. Non-blocking:
// one pending kick is enough.
func (m *Manager) kickDetector() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// detectorLoop parks until a request blocks, then sweeps every sweepEvery
// until no waiters remain.
func (m *Manager) detectorLoop() {
	defer close(m.done)
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("vtxn", "lock-detector")))
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		}
		for {
			if m.sweep() == 0 {
				break // no waiters left; park on the next kick
			}
			timer.Reset(m.sweepEvery)
			select {
			case <-m.stop:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
	}
}

// waiterRef locates one blocked request for victim abort.
type waiterRef struct {
	s   *shard
	req *request
}

// sweep takes a consistent all-shards snapshot, aborts one victim per cycle
// until the graph is acyclic, and returns the number of remaining waiters.
func (m *Manager) sweep() int {
	start := time.Now()
	for _, s := range m.shards {
		s.lock()
	}
	for {
		waiting := make(map[id.Txn]waiterRef)
		for _, s := range m.shards {
			for txn, req := range s.wanted {
				waiting[txn] = waiterRef{s: s, req: req}
			}
		}
		victim, req := m.findVictim(waiting)
		if victim == id.None {
			n := len(waiting)
			for i := len(m.shards) - 1; i >= 0; i-- {
				m.shards[i].mu.Unlock()
			}
			dur := time.Since(start)
			m.sweeps.Add(1)
			m.lastSweep.Store(dur.Nanoseconds())
			for {
				cur := m.maxSweep.Load()
				if dur.Nanoseconds() <= cur || m.maxSweep.CompareAndSwap(cur, dur.Nanoseconds()) {
					break
				}
			}
			return n
		}
		m.deadlocks.Add(1)
		req.req.granted <- fmt.Errorf("%w: %s requesting %s on %s",
			ErrDeadlock, victim, req.req.mode, req.req.res)
		if ls := req.s.table[req.req.res]; ls != nil {
			req.s.dropRequest(req.req.res, ls, req.req)
		}
		// Dropping the victim rescans and may grant other waiters, changing
		// the graph — rebuild the snapshot and look again.
	}
}

// findVictim looks for any waits-for cycle among the blocked transactions
// and returns the youngest member (largest transaction ID — IDs are
// assigned monotonically, so the largest began last). Returns id.None when
// the graph is acyclic. Caller holds every shard mutex.
func (m *Manager) findVictim(waiting map[id.Txn]waiterRef) (id.Txn, waiterRef) {
	const (
		onStack = 1
		doneV   = 2
	)
	state := make(map[id.Txn]int8, len(waiting))
	var stack []id.Txn
	var cycle []id.Txn

	var dfs func(t id.Txn) bool
	dfs = func(t id.Txn) bool {
		state[t] = onStack
		stack = append(stack, t)
		ref, isWaiting := waiting[t]
		if isWaiting {
			for next := range ref.s.waits[t] {
				switch state[next] {
				case onStack:
					// Cycle: the stack suffix from next back to t.
					for i := len(stack) - 1; i >= 0; i-- {
						cycle = append(cycle, stack[i])
						if stack[i] == next {
							break
						}
					}
					return true
				case doneV:
				default:
					if dfs(next) {
						return true
					}
				}
			}
		}
		state[t] = doneV
		stack = stack[:len(stack)-1]
		return false
	}

	for t := range waiting {
		if state[t] == 0 && dfs(t) {
			victim := cycle[0]
			for _, c := range cycle[1:] {
				if c > victim {
					victim = c
				}
			}
			return victim, waiting[victim]
		}
	}
	return id.None, waiterRef{}
}
