package id

import "testing"

func TestStrings(t *testing.T) {
	if Txn(7).String() != "txn-7" {
		t.Fatalf("Txn.String = %q", Txn(7).String())
	}
	if Tree(3).String() != "tree-3" {
		t.Fatalf("Tree.String = %q", Tree(3).String())
	}
	if None != Txn(0) {
		t.Fatal("None must be the zero Txn")
	}
}
