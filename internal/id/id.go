// Package id defines the identifier types shared by the storage, logging,
// locking, and transaction layers.
package id

import "fmt"

// Txn identifies a transaction. User transactions and system transactions
// (the paper's nested top-level actions) share one ID space; system
// transactions are flagged in the transaction manager, not in the ID.
type Txn uint64

// None is the zero Txn, meaning "no transaction".
const None Txn = 0

// String renders the ID for logs and errors.
func (t Txn) String() string { return fmt.Sprintf("txn-%d", uint64(t)) }

// Tree identifies a B-tree index: a table's clustered index, a secondary
// index, or an indexed view.
type Tree uint32

// String renders the ID for logs and errors.
func (t Tree) String() string { return fmt.Sprintf("tree-%d", uint32(t)) }
