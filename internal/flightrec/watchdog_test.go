package flightrec

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// testWatchdog builds a watchdog with evaluation state but no running loop,
// so tests can drive evaluate/report with synthetic snapshots.
func testWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.StallThreshold <= 0 {
		cfg.StallThreshold = 2 * time.Second
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 3
	}
	return &Watchdog{cfg: cfg, active: make(map[string]bool)}
}

func sigs(dets []detection) []string {
	out := make([]string, len(dets))
	for i, d := range dets {
		out[i] = d.sig
	}
	return out
}

func hasSig(dets []detection, sig string) bool {
	for _, d := range dets {
		if d.sig == sig {
			return true
		}
	}
	return false
}

func TestWatchdogWALFlushSignature(t *testing.T) {
	w := testWatchdog(WatchdogConfig{StallThreshold: time.Second})
	var prev, cur metrics.Snapshot

	cur.WAL.FlushActiveNs = int64(500 * time.Millisecond)
	if dets := w.evaluate(prev, cur); len(dets) != 0 {
		t.Fatalf("flush under threshold fired %v", sigs(dets))
	}
	cur.WAL.FlushActiveNs = int64(3 * time.Second)
	dets := w.evaluate(prev, cur)
	if !hasSig(dets, "wal-flush") {
		t.Fatalf("3s active flush not detected; got %v", sigs(dets))
	}
	for _, d := range dets {
		if d.sig == "wal-flush" && d.age != 3*time.Second {
			t.Errorf("wal-flush age = %s, want 3s", d.age)
		}
	}
}

func TestWatchdogLockConvoySignature(t *testing.T) {
	w := testWatchdog(WatchdogConfig{StallThreshold: time.Second})
	shard := func(ns ...int64) []metrics.LockShardSnapshot {
		out := make([]metrics.LockShardSnapshot, len(ns))
		for i, n := range ns {
			out[i].WaitNs = n
		}
		return out
	}
	var prev, cur metrics.Snapshot

	// Balanced wait growth across shards: no convoy even though the total is
	// large.
	prev.Lock.PerShard = shard(0, 0, 0, 0)
	cur.Lock.PerShard = shard(1e9, 1e9, 1e9, 1e9)
	if dets := w.evaluate(prev, cur); hasSig(dets, "lock-convoy") {
		t.Fatal("balanced wait growth misdetected as a convoy")
	}

	// One shard takes ~95% of the new wait time and more than the threshold.
	prev.Lock.PerShard = shard(0, 0, 0, 0)
	cur.Lock.PerShard = shard(4e9, 1e8, 5e7, 5e7)
	dets := w.evaluate(prev, cur)
	if !hasSig(dets, "lock-convoy") {
		t.Fatalf("dominant-shard wait growth not detected; got %v", sigs(dets))
	}
	for _, d := range dets {
		if d.sig == "lock-convoy" && !strings.Contains(d.detail, "shard 0") {
			t.Errorf("convoy detail does not name the hot shard: %q", d.detail)
		}
	}

	// A dominant but tiny delta (fast workload, one hot shard) must not fire.
	prev.Lock.PerShard = shard(0, 0, 0, 0)
	cur.Lock.PerShard = shard(1e8, 0, 0, 0)
	if dets := w.evaluate(prev, cur); hasSig(dets, "lock-convoy") {
		t.Fatal("sub-threshold dominant shard misdetected as a convoy")
	}
}

// TestWatchdogLockConvoyNamesHotGroup checks that when the hot-group sketch
// has attribution for the interval, the convoy detail names the actual
// (view, group key) — not just the stripe index.
func TestWatchdogLockConvoyNamesHotGroup(t *testing.T) {
	w := testWatchdog(WatchdogConfig{StallThreshold: time.Second})
	shard := func(ns ...int64) []metrics.LockShardSnapshot {
		out := make([]metrics.LockShardSnapshot, len(ns))
		for i, n := range ns {
			out[i].WaitNs = n
		}
		return out
	}
	var prev, cur metrics.Snapshot
	prev.Lock.PerShard = shard(0, 0)
	cur.Lock.PerShard = shard(4e9, 1e8)
	// Group "17" already had 1s of wait before the interval and gained 3s;
	// group "4" is new but gained only 0.5s. The detail must name "17" and
	// report its per-interval delta (3s), not its cumulative total (4s).
	prev.Hotspots.TopWait = []metrics.HotGroupSnapshot{
		{Tree: 5, View: "branch_totals", Key: "17", Value: 1e9},
	}
	cur.Hotspots.TopWait = []metrics.HotGroupSnapshot{
		{Tree: 5, View: "branch_totals", Key: "17", Value: 4e9},
		{Tree: 5, View: "branch_totals", Key: "4", Value: 5e8},
	}
	dets := w.evaluate(prev, cur)
	if !hasSig(dets, "lock-convoy") {
		t.Fatalf("convoy not detected; got %v", sigs(dets))
	}
	for _, d := range dets {
		if d.sig != "lock-convoy" {
			continue
		}
		if !strings.Contains(d.detail, "branch_totals[17]") {
			t.Errorf("convoy detail does not name the hot group: %q", d.detail)
		}
		if !strings.Contains(d.detail, "+3s wait") {
			t.Errorf("convoy detail does not carry the interval delta: %q", d.detail)
		}
	}

	// Without hot-group attribution the detail still names the stripe.
	prev.Hotspots.TopWait = nil
	cur.Hotspots.TopWait = nil
	w2 := testWatchdog(WatchdogConfig{StallThreshold: time.Second})
	dets = w2.evaluate(prev, cur)
	for _, d := range dets {
		if d.sig == "lock-convoy" && strings.Contains(d.detail, "hottest group") {
			t.Errorf("empty sketch still claimed a hottest group: %q", d.detail)
		}
	}
}

func TestWatchdogEscrowBacklogSignature(t *testing.T) {
	w := testWatchdog(WatchdogConfig{Windows: 3})
	snap := func(pending, folds int64) metrics.Snapshot {
		var s metrics.Snapshot
		s.Escrow.PendingRows = pending
		s.Escrow.FoldBatches = folds
		return s
	}

	// Growth with no folds must persist Windows intervals before firing.
	prev := snap(0, 10)
	for i := int64(1); i <= 2; i++ {
		cur := snap(i*100, 10)
		if dets := w.evaluate(prev, cur); hasSig(dets, "escrow-backlog") {
			t.Fatalf("fired after only %d interval(s)", i)
		}
		prev = cur
	}
	dets := w.evaluate(prev, snap(300, 10))
	if !hasSig(dets, "escrow-backlog") {
		t.Fatalf("3-interval backlog growth not detected; got %v", sigs(dets))
	}

	// A fold resets the streak.
	w2 := testWatchdog(WatchdogConfig{Windows: 3})
	w2.evaluate(snap(0, 10), snap(100, 10))
	w2.evaluate(snap(100, 10), snap(200, 10))
	w2.evaluate(snap(200, 10), snap(300, 11)) // fold happened
	if dets := w2.evaluate(snap(300, 11), snap(400, 11)); hasSig(dets, "escrow-backlog") {
		t.Fatal("streak not reset by an intervening fold")
	}
}

func TestWatchdogGhostStarvationSignature(t *testing.T) {
	w := testWatchdog(WatchdogConfig{Windows: 2})
	snap := func(backlog, passes int64) metrics.Snapshot {
		var s metrics.Snapshot
		s.Ghost.Backlog = backlog
		s.Ghost.CleanerPasses = passes
		return s
	}
	if dets := w.evaluate(snap(0, 5), snap(50, 5)); hasSig(dets, "ghost-starvation") {
		t.Fatal("fired after one interval with Windows=2")
	}
	dets := w.evaluate(snap(50, 5), snap(50, 5))
	if !hasSig(dets, "ghost-starvation") {
		t.Fatalf("persistent backlog with idle cleaner not detected; got %v", sigs(dets))
	}
	// A cleaner pass re-arms the streak even if backlog remains.
	if dets := w.evaluate(snap(50, 5), snap(40, 6)); hasSig(dets, "ghost-starvation") {
		t.Fatal("streak not reset by a cleaner pass")
	}
}

// TestWatchdogScrubDivergenceSignature: any growth in the scrubber's
// divergence counter fires immediately (no streak — a broken invariant is not
// a trend), naming the view whose per-view count grew the most.
func TestWatchdogScrubDivergenceSignature(t *testing.T) {
	var wm metrics.WatchdogMetrics
	w := testWatchdog(WatchdogConfig{Metrics: &wm})
	snap := func(total int64, views ...metrics.ViewScrubSnapshot) metrics.Snapshot {
		var s metrics.Snapshot
		s.Scrub.Divergences = total
		s.Scrub.Views = views
		return s
	}
	// Flat counter: nothing fires.
	if dets := w.evaluate(snap(2), snap(2)); hasSig(dets, "scrub-divergence") {
		t.Fatal("flat divergence counter fired")
	}
	// Growth fires at once and names the worst view.
	prev := snap(2,
		metrics.ViewScrubSnapshot{Tree: 1, View: "ok", Divergences: 0},
		metrics.ViewScrubSnapshot{Tree: 2, View: "bad", Divergences: 2})
	cur := snap(7,
		metrics.ViewScrubSnapshot{Tree: 1, View: "ok", Divergences: 1},
		metrics.ViewScrubSnapshot{Tree: 2, View: "bad", Divergences: 6})
	dets := w.evaluate(prev, cur)
	if !hasSig(dets, "scrub-divergence") {
		t.Fatalf("divergence growth not detected; got %v", sigs(dets))
	}
	for _, d := range dets {
		if d.sig == "scrub-divergence" && !strings.Contains(d.detail, `view "bad": 4`) {
			t.Errorf("detail does not name the worst view: %q", d.detail)
		}
	}
	// The counter routes to the dedicated metric.
	w.report(dets)
	if got := wm.ScrubDivergences.Load(); got != 1 {
		t.Fatalf("scrub_divergences = %d, want 1", got)
	}
}

// TestWatchdogReportEdgeTriggered: a persisting condition is reported once at
// onset; after it clears, the next onset reports again.
func TestWatchdogReportEdgeTriggered(t *testing.T) {
	var wm metrics.WatchdogMetrics
	var sink bytes.Buffer
	rec := New(Config{Sink: &sink, MinDumpGap: time.Nanosecond})
	next := &capture{}
	rec2 := New(Config{Next: next}) // tracer target for stall events
	w := testWatchdog(WatchdogConfig{Metrics: &wm, Tracer: rec2, Recorder: rec})

	d := detection{sig: "wal-flush", detail: "flush active 3s", age: 3 * time.Second}
	w.report([]detection{d})
	w.report([]detection{d}) // still firing: no second report
	if got := wm.Detections.Load(); got != 1 {
		t.Fatalf("persisting stall counted %d times, want 1", got)
	}
	if got := wm.WALStalls.Load(); got != 1 {
		t.Fatalf("wal_stalls = %d, want 1", got)
	}
	stalls := 0
	for _, e := range next.events() {
		if e.Type == metrics.EventStall {
			stalls++
			if e.Phase != "wal-flush" || e.Dur != 3*time.Second {
				t.Errorf("stall event mismatch: %+v", e)
			}
		}
	}
	if stalls != 1 {
		t.Fatalf("emitted %d EventStall, want 1", stalls)
	}
	if !strings.Contains(sink.String(), "watchdog stall: wal-flush") {
		t.Errorf("recorder dump missing the stall reason:\n%s", sink.String())
	}

	w.report(nil)            // condition cleared: re-arm
	w.report([]detection{d}) // new onset
	if got := wm.Detections.Load(); got != 2 {
		t.Fatalf("re-onset after clear counted %d total, want 2", got)
	}
}

// TestWatchdogLifecycle: the loop starts, polls, and Close stops it; a nil
// watchdog Close is a no-op (the engine calls it unconditionally).
func TestWatchdogLifecycle(t *testing.T) {
	polls := make(chan struct{}, 64)
	w := StartWatchdog(WatchdogConfig{
		Interval: time.Millisecond,
		Snap: func() metrics.Snapshot {
			select {
			case polls <- struct{}{}:
			default:
			}
			return metrics.Snapshot{}
		},
	})
	select {
	case <-polls:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never polled")
	}
	w.Close()
	var none *Watchdog
	none.Close()
}
