package flightrec

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/metrics"
)

// capture is a downstream tracer that remembers every forwarded event.
type capture struct {
	mu  sync.Mutex
	evs []metrics.Event
}

func (c *capture) TraceEvent(e metrics.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
}

func (c *capture) events() []metrics.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]metrics.Event(nil), c.evs...)
}

func TestRecorderStampsAndThreadsSpans(t *testing.T) {
	next := &capture{}
	r := New(Config{Next: next})

	r.TraceEvent(metrics.Event{Type: metrics.EventTxBegin, Txn: 7})
	r.TraceEvent(metrics.Event{Type: metrics.EventLockWait, Txn: 7, Resource: "row/accounts/0", Mode: "X", Outcome: "granted"})
	r.TraceEvent(metrics.Event{Type: metrics.EventGroupCommit, Txn: 7, Rows: 1})
	r.TraceEvent(metrics.Event{Type: metrics.EventTxEnd, Txn: 7, Outcome: "commit"})

	evs := next.events()
	if len(evs) != 4 {
		t.Fatalf("forwarded %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.WallNs == 0 {
			t.Errorf("event %d: wall timestamp not stamped", i)
		}
		if e.Span != evs[0].Seq {
			t.Errorf("event %d: span %d, want the tx-begin seq %d", i, e.Span, evs[0].Seq)
		}
	}

	// After tx-end the span is retired: a stray event for the same txn ID (a
	// reused ID is a new transaction) gets no stale span.
	r.TraceEvent(metrics.Event{Type: metrics.EventFold, Txn: 7})
	if got := next.events()[4].Span; got != 0 {
		t.Errorf("post-end event inherited retired span %d, want 0", got)
	}

	// Engine-level events (no txn) carry no span.
	r.TraceEvent(metrics.Event{Type: metrics.EventGhostClean})
	if got := next.events()[5].Span; got != 0 {
		t.Errorf("engine event got span %d, want 0", got)
	}
}

func TestRecorderInterleavedSpans(t *testing.T) {
	r := New(Config{})
	r.TraceEvent(metrics.Event{Type: metrics.EventTxBegin, Txn: 1})
	r.TraceEvent(metrics.Event{Type: metrics.EventTxBegin, Txn: 2})
	r.TraceEvent(metrics.Event{Type: metrics.EventLockWait, Txn: 1, Outcome: "granted"})
	r.TraceEvent(metrics.Event{Type: metrics.EventLockWait, Txn: 2, Outcome: "granted"})
	r.TraceEvent(metrics.Event{Type: metrics.EventTxEnd, Txn: 1, Outcome: "commit"})
	r.TraceEvent(metrics.Event{Type: metrics.EventTxEnd, Txn: 2, Outcome: "abort"})

	byTxn := map[id.Txn]map[uint64]bool{}
	for _, e := range r.snapshot() {
		if e.Txn == 0 {
			continue
		}
		if byTxn[e.Txn] == nil {
			byTxn[e.Txn] = map[uint64]bool{}
		}
		byTxn[e.Txn][e.Span] = true
	}
	if len(byTxn[1]) != 1 || len(byTxn[2]) != 1 {
		t.Fatalf("each txn must have exactly one span, got txn1=%v txn2=%v", byTxn[1], byTxn[2])
	}
	for s := range byTxn[1] {
		if byTxn[2][s] {
			t.Fatalf("txn 1 and 2 share span %d", s)
		}
	}
}

func TestRecorderWrapStaysBounded(t *testing.T) {
	r := New(Config{Size: 64}) // rounds up to the per-shard minimum
	capacity := r.Capacity()
	total := capacity*3 + 17
	for i := 0; i < total; i++ {
		r.TraceEvent(metrics.Event{Type: metrics.EventGroupCommit, Rows: i})
	}
	if got := r.Recorded(); got != int64(total) {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	recs := r.snapshot()
	if len(recs) > capacity {
		t.Fatalf("snapshot holds %d events, capacity is %d", len(recs), capacity)
	}
	// The newest event must have survived the wrap.
	if last := recs[len(recs)-1].Seq; last != uint64(total) {
		t.Fatalf("newest surviving seq = %d, want %d", last, total)
	}
}

func TestTriggerRateLimitAndTimeline(t *testing.T) {
	var sink bytes.Buffer
	r := New(Config{Sink: &sink, MinDumpGap: time.Hour})
	r.TraceEvent(metrics.Event{Type: metrics.EventTxBegin, Txn: 3})
	r.TraceEvent(metrics.Event{Type: metrics.EventLockWait, Txn: 3,
		Resource: "row/accounts/1", Mode: "X", Outcome: "deadlock"})
	r.TraceEvent(metrics.Event{Type: metrics.EventLockWait, Txn: 3,
		Resource: "row/accounts/2", Mode: "X", Outcome: "deadlock"})

	if got := r.Dumps(); got != 1 {
		t.Fatalf("Dumps() = %d, want 1 (second trigger inside MinDumpGap must be dropped)", got)
	}
	out := sink.String()
	for _, want := range []string{
		"vtxn flight record",
		"reason: lock deadlock (X on row/accounts/1)",
		"=== spans ===",
		"deadlock",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline dump missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONLSchema(t *testing.T) {
	r := New(Config{})
	r.TraceEvent(metrics.Event{Type: metrics.EventTxBegin, Txn: 9})
	r.TraceEvent(metrics.Event{Type: metrics.EventLockWait, Txn: 9,
		Resource: "row/t/1", Mode: "E", Outcome: "granted", Dur: time.Millisecond})
	r.TraceEvent(metrics.Event{Type: metrics.EventFold, Txn: 9, Rows: 4})
	r.TraceEvent(metrics.Event{Type: metrics.EventRecovery, Phase: "redo", Dur: time.Millisecond})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(lines))
	}
	// Every line is an object with the required keys; optional keys appear
	// only when set (omitempty).
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		for _, k := range []string{"seq", "wall_ns", "type"} {
			if _, ok := m[k]; !ok {
				t.Errorf("line %d missing required key %q: %s", i, k, ln)
			}
		}
	}
	var wait Record
	if err := json.Unmarshal([]byte(lines[1]), &wait); err != nil {
		t.Fatal(err)
	}
	if wait.Type != "lock-wait" || wait.Resource != "row/t/1" || wait.Mode != "E" ||
		wait.Outcome != "granted" || wait.DurNs != int64(time.Millisecond) || wait.Txn != 9 {
		t.Errorf("lock-wait record round-trip mismatch: %+v", wait)
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[3]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Phase != "redo" || rec.Span != 0 || rec.Txn != 0 {
		t.Errorf("recovery record mismatch: %+v", rec)
	}
}

// TestRecorderConcurrent hammers the ring from many writers while dumps run —
// the -race proof that per-slot TryLock snapshotting is sound.
func TestRecorderConcurrent(t *testing.T) {
	r := New(Config{Size: 256})
	const writers, perWriter = 8, 2000

	stop := make(chan struct{})
	dumperDone := make(chan struct{})
	go func() {
		defer close(dumperDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.WriteTimeline(io.Discard)
				r.WriteJSONL(io.Discard)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txn := id.Txn(w + 1)
			for i := 0; i < perWriter; i++ {
				r.TraceEvent(metrics.Event{Type: metrics.EventTxBegin, Txn: txn})
				r.TraceEvent(metrics.Event{Type: metrics.EventLockWait, Txn: txn, Outcome: "granted"})
				r.TraceEvent(metrics.Event{Type: metrics.EventTxEnd, Txn: txn, Outcome: "commit"})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-dumperDone

	if got, want := r.Recorded(), int64(writers*perWriter*3); got != want {
		t.Fatalf("Recorded() = %d, want %d", got, want)
	}
}
