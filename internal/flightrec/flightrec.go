// Package flightrec is the engine's always-on flight recorder: a bounded,
// sharded ring buffer holding the most recent trace events, rendered on
// demand (or automatically at the moment of failure) as a causal timeline or
// machine-readable JSONL.
//
// The recorder sits at the head of the tracer chain: every metrics.Event the
// engine emits is stamped with a process-monotonic sequence number, a wall
// timestamp, and a causal span ID, written into the ring, and forwarded to
// the downstream tracer (Options.Tracer). Old entries are simply overwritten
// — there is no sampling knob because history is bounded by construction,
// like SQL Server's system_health ring buffer.
package flightrec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
	"repro/internal/metrics"
)

// DefaultSize is the ring capacity used when Config.Size is zero: enough for
// several seconds of history at full commit rate while staying under ~2 MiB.
const DefaultSize = 8192

// Config configures a Recorder.
type Config struct {
	// Size is the total ring capacity in events (rounded up per shard);
	// zero selects DefaultSize.
	Size int
	// Next is the downstream tracer events are forwarded to after recording
	// (the user's Options.Tracer); nil means record only.
	Next metrics.Tracer
	// Sink, when non-nil, receives an automatic human-readable dump when the
	// engine hits a failure trigger (deadlock, lock timeout, watchdog stall).
	Sink io.Writer
	// MinDumpGap rate-limits automatic dumps; zero selects 5s.
	MinDumpGap time.Duration
}

// slot is one ring cell. The mutex is uncontended except when a reader is
// snapshotting the exact cell a writer is overwriting; readers use TryLock
// and simply skip cells mid-write, so writers never block on dumps.
type slot struct {
	mu sync.Mutex
	ev metrics.Event
}

// shard is one stripe of the ring with its own claim cursor, so concurrent
// writers (different transactions) do not all bump a single hot cursor.
type shard struct {
	cursor atomic.Uint64
	_      [7]uint64 // keep cursors on distinct cache lines
	slots  []slot
}

// spanShard is one stripe of the txn → span table.
type spanShard struct {
	mu sync.Mutex
	m  map[id.Txn]uint64
}

// Recorder is the flight recorder. It implements metrics.Tracer.
type Recorder struct {
	seq    atomic.Uint64
	shards []shard
	mask   uint64 // len(shards) - 1

	spans []spanShard

	next metrics.Tracer

	sink       io.Writer
	minDumpGap time.Duration
	lastDumpNs atomic.Int64
	dumpMu     sync.Mutex
	dumps      atomic.Int64
}

const spanShards = 16

// New returns a recorder with cfg applied.
func New(cfg Config) *Recorder {
	size := cfg.Size
	if size <= 0 {
		size = DefaultSize
	}
	nshards := nextPow2(min(runtime.GOMAXPROCS(0), 16))
	perShard := nextPow2((size + nshards - 1) / nshards)
	if perShard < 64 {
		perShard = 64
	}
	r := &Recorder{
		shards:     make([]shard, nshards),
		mask:       uint64(nshards - 1),
		spans:      make([]spanShard, spanShards),
		next:       cfg.Next,
		sink:       cfg.Sink,
		minDumpGap: cfg.MinDumpGap,
	}
	if r.minDumpGap <= 0 {
		r.minDumpGap = 5 * time.Second
	}
	for i := range r.shards {
		r.shards[i].slots = make([]slot, perShard)
	}
	for i := range r.spans {
		r.spans[i].m = make(map[id.Txn]uint64)
	}
	return r
}

// Capacity is the total ring capacity in events.
func (r *Recorder) Capacity() int {
	return len(r.shards) * len(r.shards[0].slots)
}

// Recorded is the total events ever recorded (the high-water sequence).
func (r *Recorder) Recorded() int64 { return int64(r.seq.Load()) }

// Dumps is the number of dumps written (automatic triggers and explicit
// timeline/JSONL writes).
func (r *Recorder) Dumps() int64 { return r.dumps.Load() }

// TraceEvent implements metrics.Tracer: stamp, record, forward, and — for
// failed lock waits — fire the automatic failure dump.
func (r *Recorder) TraceEvent(e metrics.Event) {
	seq := r.seq.Add(1)
	e.Seq = seq
	e.WallNs = time.Now().UnixNano()
	e.Span = r.resolveSpan(seq, &e)

	// Shard by transaction so one txn's events share a stripe; engine-level
	// events stripe by sequence.
	h := uint64(e.Txn)
	if h == 0 {
		h = seq
	}
	sh := &r.shards[h&r.mask]
	s := &sh.slots[sh.cursor.Add(1)&uint64(len(sh.slots)-1)]
	s.mu.Lock()
	s.ev = e
	s.mu.Unlock()

	if r.next != nil {
		r.next.TraceEvent(e)
	}

	if r.sink != nil && e.Type == metrics.EventLockWait &&
		(e.Outcome == "deadlock" || e.Outcome == "timeout") {
		r.Trigger("lock " + e.Outcome + " (" + e.Mode + " on " + e.Resource + ")")
	}
}

// SpanOf returns the live causal span of txn (the seq of its tx-begin), or
// zero when the transaction is unknown or already ended. The commit path uses
// it to thread the originating span across the async deferred-maintenance
// boundary before tx-end retires the table entry.
func (r *Recorder) SpanOf(txn id.Txn) uint64 {
	if r == nil || txn == 0 {
		return 0
	}
	ss := &r.spans[uint64(txn)%spanShards]
	ss.mu.Lock()
	span := ss.m[txn]
	ss.mu.Unlock()
	return span
}

// resolveSpan returns the causal span for e and maintains the span table: a
// transaction's span is the sequence number of its tx-begin record, attached
// to every later event carrying its txn ID and retired at tx-end.
func (r *Recorder) resolveSpan(seq uint64, e *metrics.Event) uint64 {
	if e.Txn == 0 {
		return 0
	}
	ss := &r.spans[uint64(e.Txn)%spanShards]
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch e.Type {
	case metrics.EventTxBegin:
		ss.m[e.Txn] = seq
		return seq
	case metrics.EventTxEnd:
		span := ss.m[e.Txn]
		delete(ss.m, e.Txn)
		return span
	default:
		return ss.m[e.Txn]
	}
}

// snapshot collects the ring's live records ordered by sequence. Cells being
// overwritten at this instant are skipped rather than waited on.
func (r *Recorder) snapshot() []metrics.Event {
	out := make([]metrics.Event, 0, r.Capacity())
	for i := range r.shards {
		sh := &r.shards[i]
		for j := range sh.slots {
			s := &sh.slots[j]
			if !s.mu.TryLock() {
				continue
			}
			ev := s.ev
			s.mu.Unlock()
			if ev.Seq != 0 {
				out = append(out, ev)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Trigger writes an automatic human-readable dump to the configured sink,
// rate-limited to one per MinDumpGap. Safe to call from event paths: the ring
// is snapshotted, never locked wholesale.
func (r *Recorder) Trigger(reason string) {
	if r.sink == nil {
		return
	}
	now := time.Now().UnixNano()
	last := r.lastDumpNs.Load()
	if now-last < int64(r.minDumpGap) || !r.lastDumpNs.CompareAndSwap(last, now) {
		return
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	r.writeTimeline(r.sink, reason)
	r.dumps.Add(1)
}

// WriteTimeline renders the recorded history as a human-readable causal
// timeline: one line per event plus a per-span summary.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	err := r.writeTimeline(w, "explicit dump")
	r.dumps.Add(1)
	return err
}

func (r *Recorder) writeTimeline(w io.Writer, reason string) error {
	recs := r.snapshot()
	bw := bufio.NewWriter(w)
	if len(recs) == 0 {
		fmt.Fprintf(bw, "=== vtxn flight record: empty (reason: %s) ===\n", reason)
		return bw.Flush()
	}
	base := recs[0].WallNs
	fmt.Fprintf(bw, "=== vtxn flight record: %d events (seq %d..%d, window %s, reason: %s) ===\n",
		len(recs), recs[0].Seq, recs[len(recs)-1].Seq,
		time.Duration(recs[len(recs)-1].WallNs-base), reason)
	fmt.Fprintf(bw, "%10s %12s %-10s event\n", "seq", "t+ms", "span")
	for _, e := range recs {
		span := "-"
		switch {
		case e.Span != 0:
			span = fmt.Sprintf("s%d", e.Span)
		case len(e.Spans) > 0:
			// Multi-parent event (coalesced deferred fold / watermark advance):
			// name the first originating span and how many more contributed.
			span = fmt.Sprintf("s%d", e.Spans[0])
			if len(e.Spans) > 1 {
				span += fmt.Sprintf("+%d", len(e.Spans)-1)
			}
		}
		fmt.Fprintf(bw, "%10d %+12.3f %-10s %s\n",
			e.Seq, float64(e.WallNs-base)/1e6, span, e.String())
	}
	writeSpanSummary(bw, recs, base)
	return bw.Flush()
}

// spanInfo accumulates one span's story for the summary section.
type spanInfo struct {
	span        uint64
	txn         id.Txn
	events      int
	firstNs     int64
	lastNs      int64
	waits       int
	failedWaits int
	foldRows    int
	outcome     string
	// visibleIn names the views whose watermark advances credited this span
	// (the commit's effects became readable there).
	visibleIn []string
}

func writeSpanSummary(w io.Writer, recs []metrics.Event, base int64) {
	bydSpan := make(map[uint64]*spanInfo)
	var order []uint64
	get := func(span uint64, e metrics.Event) *spanInfo {
		si := bydSpan[span]
		if si == nil {
			si = &spanInfo{span: span, txn: e.Txn, firstNs: e.WallNs}
			bydSpan[span] = si
			order = append(order, span)
		}
		return si
	}
	for _, e := range recs {
		// Multi-parent events (deferred folds, watermark advances) credit each
		// originating span: the commit's story continues past tx-end.
		for _, span := range e.Spans {
			si := get(span, e)
			si.events++
			si.lastNs = e.WallNs
			if e.Type == metrics.EventWatermarkAdvance {
				si.visibleIn = append(si.visibleIn, e.Resource)
			}
		}
		if e.Span == 0 {
			continue
		}
		si := get(e.Span, e)
		si.events++
		si.lastNs = e.WallNs
		switch e.Type {
		case metrics.EventLockWait:
			si.waits++
			if e.Outcome != "granted" {
				si.failedWaits++
			}
		case metrics.EventFold:
			si.foldRows += e.Rows
		case metrics.EventTxEnd:
			si.outcome = e.Outcome
		}
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintf(w, "=== spans ===\n")
	for _, sp := range order {
		si := bydSpan[sp]
		out := si.outcome
		if out == "" {
			out = "open"
		}
		visible := ""
		if len(si.visibleIn) > 0 {
			seen := map[string]bool{}
			var views []string
			for _, v := range si.visibleIn {
				if !seen[v] {
					seen[v] = true
					views = append(views, v)
				}
			}
			visible = ", visible in: " + strings.Join(views, ", ")
		}
		fmt.Fprintf(w, "  s%-8d %s: %d events +%.3fms..+%.3fms, %d lock waits (%d failed), %d rows folded, end: %s%s\n",
			si.span, si.txn, si.events,
			float64(si.firstNs-base)/1e6, float64(si.lastNs-base)/1e6,
			si.waits, si.failedWaits, si.foldRows, out, visible)
	}
}

// Record is the JSONL form of one recorded event. The field set is a stable
// schema (golden-tested like the metrics snapshot); only additions are
// allowed.
type Record struct {
	Seq    uint64 `json:"seq"`
	WallNs int64  `json:"wall_ns"`
	Span   uint64 `json:"span,omitempty"`
	// Spans are the originating commits' spans for events downstream of the
	// async deferred-maintenance boundary (multi-parent for coalesced
	// batches).
	Spans    []uint64 `json:"spans,omitempty"`
	Type     string   `json:"type"`
	Txn      uint64   `json:"txn,omitempty"`
	DurNs    int64    `json:"dur_ns,omitempty"`
	Resource string   `json:"resource,omitempty"`
	Mode     string   `json:"mode,omitempty"`
	Outcome  string   `json:"outcome,omitempty"`
	Rows     int      `json:"rows,omitempty"`
	Phase    string   `json:"phase,omitempty"`
}

// WriteJSONL renders the recorded history as machine-readable JSON Lines,
// one Record per line, ordered by sequence.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	recs := r.snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range recs {
		rec := Record{
			Seq:      e.Seq,
			WallNs:   e.WallNs,
			Span:     e.Span,
			Spans:    e.Spans,
			Type:     e.Type.String(),
			Txn:      uint64(e.Txn),
			DurNs:    int64(e.Dur),
			Resource: e.Resource,
			Mode:     e.Mode,
			Outcome:  e.Outcome,
			Rows:     e.Rows,
			Phase:    e.Phase,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	r.dumps.Add(1)
	return bw.Flush()
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
