package flightrec

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/metrics"
)

// WatchdogConfig configures a stall watchdog.
type WatchdogConfig struct {
	// Interval between snapshot polls; zero selects 500ms.
	Interval time.Duration
	// StallThreshold is the age past which an in-progress condition counts as
	// a stall (WAL flush age, one-stripe wait-time slope); zero selects 2s.
	StallThreshold time.Duration
	// Windows is how many consecutive intervals a growth signature (escrow
	// backlog, ghost starvation) must persist; zero selects 3.
	Windows int
	// FreshnessSLO, when positive, arms the freshness-slo signature: any view
	// whose current staleness exceeds it fires a detection naming the lagging
	// view (and auto-dumps the linked trace via Recorder).
	FreshnessSLO time.Duration
	// Snap samples the engine (DB.Metrics).
	Snap func() metrics.Snapshot
	// Tracer receives EventStall on each detection onset (normally the flight
	// recorder, which forwards down the chain); may be nil.
	Tracer metrics.Tracer
	// Recorder, when non-nil and configured with a sink, is triggered to dump
	// on each detection onset.
	Recorder *Recorder
	// Metrics receives detection counts; may be nil.
	Metrics *metrics.WatchdogMetrics
}

// Watchdog is a background goroutine that diffs engine metrics snapshots and
// reports stall signatures: a WAL flush not advancing while commits queue, a
// lock-shard convoy, escrow fold backlog growth, and ghost-cleaner
// starvation. Detections are edge-triggered — one report per onset, re-armed
// once the condition clears.
type Watchdog struct {
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}

	// prev is the baseline snapshot, captured synchronously at start so no
	// counter edge predates it; thereafter owned by the loop goroutine.
	prev metrics.Snapshot

	// evaluation state (owned by the loop goroutine, or the test driving
	// evaluate directly).
	active       map[string]bool
	escrowStreak int
	ghostStreak  int
}

// detection is one stall signature currently firing.
type detection struct {
	sig    string // "wal-flush", "lock-convoy", "escrow-backlog", "ghost-starvation", "freshness-slo", "scrub-divergence"
	detail string
	age    time.Duration
}

// StartWatchdog launches the watchdog goroutine. Close stops it.
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.StallThreshold <= 0 {
		cfg.StallThreshold = 2 * time.Second
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 3
	}
	w := &Watchdog{
		cfg:    cfg,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		active: make(map[string]bool),
	}
	// The baseline snapshot is taken here, synchronously, not on the loop
	// goroutine: counters that tick before the goroutine's first run would
	// otherwise be folded into the baseline and their edge lost. For the
	// stall signatures that only shifts a window boundary, but for the
	// scrub-divergence counter the edge IS the signal — a divergence found
	// microseconds after Open must still fire.
	w.prev = cfg.Snap()
	go w.loop()
	return w
}

// Close stops the watchdog and waits for its goroutine to exit. Safe to call
// on a nil receiver and idempotent via the engine (which nils its reference).
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

func (w *Watchdog) loop() {
	defer close(w.done)
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("vtxn", "watchdog")))
	ticker := time.NewTicker(w.cfg.Interval)
	defer ticker.Stop()
	prev := w.prev
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		cur := w.cfg.Snap()
		w.report(w.evaluate(prev, cur))
		prev = cur
	}
}

// report emits each detection whose signature was not already active, and
// re-arms signatures that cleared.
func (w *Watchdog) report(dets []detection) {
	firing := make(map[string]bool, len(dets))
	for _, d := range dets {
		firing[d.sig] = true
		if w.active[d.sig] {
			continue
		}
		w.active[d.sig] = true
		w.count(d.sig)
		if w.cfg.Tracer != nil {
			w.cfg.Tracer.TraceEvent(metrics.Event{
				Type:     metrics.EventStall,
				Phase:    d.sig,
				Resource: d.detail,
				Dur:      d.age,
			})
		}
		if w.cfg.Recorder != nil {
			w.cfg.Recorder.Trigger("watchdog stall: " + d.sig + " — " + d.detail)
		}
	}
	for sig := range w.active {
		if !firing[sig] {
			delete(w.active, sig)
		}
	}
}

func (w *Watchdog) count(sig string) {
	m := w.cfg.Metrics
	if m == nil {
		return
	}
	m.Detections.Add(1)
	switch sig {
	case "wal-flush":
		m.WALStalls.Add(1)
	case "lock-convoy":
		m.LockConvoys.Add(1)
	case "escrow-backlog":
		m.EscrowStalls.Add(1)
	case "ghost-starvation":
		m.GhostStalls.Add(1)
	case "freshness-slo":
		m.FreshnessBreaches.Add(1)
	case "scrub-divergence":
		m.ScrubDivergences.Add(1)
	}
}

// evaluate diffs two consecutive snapshots and returns the stall signatures
// currently firing. It owns the streak counters for the growth signatures.
func (w *Watchdog) evaluate(prev, cur metrics.Snapshot) []detection {
	var dets []detection
	threshold := w.cfg.StallThreshold

	// 1. WAL flush stall: a physical flush has been in progress longer than
	// the threshold — commits queue behind it on the flush mutex.
	if age := time.Duration(cur.WAL.FlushActiveNs); age > threshold {
		queued := cur.WAL.Appends - cur.WAL.BatchRecords
		dets = append(dets, detection{
			sig:    "wal-flush",
			detail: fmt.Sprintf("group-commit flush active %s with %d unflushed appends", age.Round(time.Millisecond), queued),
			age:    age,
		})
	}

	// 2. Lock-shard convoy: one stripe accumulated the dominant share (≥75%)
	// of new wait time this interval, and at least StallThreshold's worth —
	// multiple waiters piled on one stripe's resources.
	if n := len(cur.Lock.PerShard); n > 0 && n == len(prev.Lock.PerShard) {
		var total, maxDelta int64
		maxShard := -1
		for i := range cur.Lock.PerShard {
			d := cur.Lock.PerShard[i].WaitNs - prev.Lock.PerShard[i].WaitNs
			total += d
			if d > maxDelta {
				maxDelta, maxShard = d, i
			}
		}
		if maxDelta >= int64(threshold) && maxDelta*4 >= total*3 {
			detail := fmt.Sprintf("lock shard %d accumulated %s of %s total wait time this interval",
				maxShard, time.Duration(maxDelta).Round(time.Millisecond), time.Duration(total).Round(time.Millisecond))
			// Name the culprit: the hot-group sketch says which (view, group
			// key) gained the most wait this interval, turning "a stripe is
			// hot" into an actionable key.
			if g, ok := hottestWaitGroup(prev.Hotspots.TopWait, cur.Hotspots.TopWait); ok {
				detail += fmt.Sprintf("; hottest group %s[%s] +%s wait",
					g.View, g.Key, time.Duration(g.Value).Round(time.Millisecond))
			}
			dets = append(dets, detection{
				sig:    "lock-convoy",
				detail: detail,
				age:    w.cfg.Interval,
			})
		}
	}

	// 3. Escrow fold backlog: pending-delta rows keep growing while no commit
	// folds them, for Windows consecutive intervals.
	if cur.Escrow.PendingRows > prev.Escrow.PendingRows &&
		cur.Escrow.FoldBatches == prev.Escrow.FoldBatches {
		w.escrowStreak++
	} else {
		w.escrowStreak = 0
	}
	if w.escrowStreak >= w.cfg.Windows {
		dets = append(dets, detection{
			sig: "escrow-backlog",
			detail: fmt.Sprintf("%d view rows with unfolded deltas, growing for %d intervals with no folds",
				cur.Escrow.PendingRows, w.escrowStreak),
			age: time.Duration(w.escrowStreak) * w.cfg.Interval,
		})
	}

	// 4. Ghost-cleaner starvation: a ghost backlog persists while the cleaner
	// makes no passes, for Windows consecutive intervals.
	if cur.Ghost.Backlog > 0 && cur.Ghost.CleanerPasses == prev.Ghost.CleanerPasses {
		w.ghostStreak++
	} else {
		w.ghostStreak = 0
	}
	if w.ghostStreak >= w.cfg.Windows {
		dets = append(dets, detection{
			sig: "ghost-starvation",
			detail: fmt.Sprintf("%d ghost rows pending with no cleaner pass for %d intervals",
				cur.Ghost.Backlog, w.ghostStreak),
			age: time.Duration(w.ghostStreak) * w.cfg.Interval,
		})
	}

	// 5. Freshness SLO breach: some view's current staleness exceeds the
	// configured bound — the deferred pipeline is not keeping the promise.
	// Level-triggered input, edge-triggered reporting like every signature:
	// one detection per onset, naming the worst-lagging view.
	if slo := w.cfg.FreshnessSLO; slo > 0 {
		var worst metrics.ViewFreshnessSnapshot
		for _, v := range cur.Freshness.Views {
			if v.StalenessNs > worst.StalenessNs {
				worst = v
			}
		}
		if age := time.Duration(worst.StalenessNs); age > slo {
			dets = append(dets, detection{
				sig: "freshness-slo",
				detail: fmt.Sprintf("view %q staleness %s exceeds SLO %s (watermark lagging)",
					worst.View, age.Round(time.Millisecond), slo),
				age: age,
			})
		}
	}

	// 6. Scrub divergence: the online scrubber confirmed stored view rows
	// disagreeing with a recompute — a broken invariant, not a performance
	// stall. The counter delta carries the edge; the detail names the view
	// whose per-view count grew the most this interval.
	if d := cur.Scrub.Divergences - prev.Scrub.Divergences; d > 0 {
		prevByTree := make(map[uint32]int64, len(prev.Scrub.Views))
		for _, v := range prev.Scrub.Views {
			prevByTree[v.Tree] = v.Divergences
		}
		var worst metrics.ViewScrubSnapshot
		var worstDelta int64
		for _, v := range cur.Scrub.Views {
			if vd := v.Divergences - prevByTree[v.Tree]; vd > worstDelta {
				worstDelta, worst = vd, v
			}
		}
		detail := fmt.Sprintf("%d view rows diverged from recompute this interval", d)
		if worstDelta > 0 {
			detail = fmt.Sprintf("view %q: %d of %s", worst.View, worstDelta, detail)
		}
		dets = append(dets, detection{sig: "scrub-divergence", detail: detail, age: w.cfg.Interval})
	}

	return dets
}

// hottestWaitGroup returns the hot group that gained the most lock wait
// between two snapshots' heavy-hitter listings (matched by tree+key; a group
// new to cur counts from zero). Returned Value is the interval's wait-ns
// delta, not the cumulative estimate.
func hottestWaitGroup(prev, cur []metrics.HotGroupSnapshot) (metrics.HotGroupSnapshot, bool) {
	type gk struct {
		tree uint32
		key  string
	}
	pv := make(map[gk]int64, len(prev))
	for _, p := range prev {
		pv[gk{p.Tree, p.Key}] = p.Value
	}
	var best metrics.HotGroupSnapshot
	var bestDelta int64
	for _, c := range cur {
		d := c.Value - pv[gk{c.Tree, c.Key}]
		if d > bestDelta {
			bestDelta = d
			best = c
			best.Value = d
		}
	}
	return best, bestDelta > 0
}
