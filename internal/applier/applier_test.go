package applier

import (
	"reflect"
	"testing"

	"repro/internal/id"
	"repro/internal/wal"
)

func batch(ts uint64, groups ...GroupDelta) *Batch {
	return &Batch{TS: ts, Groups: groups}
}

func TestCoalescerMergesPerGroup(t *testing.T) {
	c := NewCoalescer()
	in, co := c.Add(batch(1, GroupDelta{Tree: 7, Key: "a", Deltas: []wal.ColDelta{
		{Col: 0, Int: 1}, {Col: 1, Int: 10},
	}}))
	if in != 2 || co != 0 {
		t.Fatalf("first add: in=%d coalesced=%d, want 2/0", in, co)
	}
	in, co = c.Add(batch(2, GroupDelta{Tree: 7, Key: "a", Deltas: []wal.ColDelta{
		{Col: 0, Int: 1}, {Col: 1, Int: -4},
	}}))
	if in != 2 || co != 2 {
		t.Fatalf("second add: in=%d coalesced=%d, want 2/2", in, co)
	}
	got := c.Take()
	want := []GroupDelta{{Tree: 7, Key: "a", Deltas: []wal.ColDelta{
		{Col: 0, Int: 2}, {Col: 1, Int: 6},
	}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Take = %+v, want %+v", got, want)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after Take = %d, want 0", c.Len())
	}
}

func TestCoalescerKeepsIntAndFloatCellsExact(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1, GroupDelta{Tree: 3, Key: "k", Deltas: []wal.ColDelta{
		{Col: 2, Int: 5},
		{Col: 2, IsFloat: true, Float: 0.5},
	}}))
	c.Add(batch(2, GroupDelta{Tree: 3, Key: "k", Deltas: []wal.ColDelta{
		{Col: 2, IsFloat: true, Float: 0.25},
	}}))
	got := c.Take()
	want := []GroupDelta{{Tree: 3, Key: "k", Deltas: []wal.ColDelta{
		{Col: 2, Int: 5},
		{Col: 2, IsFloat: true, Float: 0.75},
	}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Take = %+v, want %+v", got, want)
	}
}

func TestCoalescerTakeSortsAcrossTreesAndKeys(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1,
		GroupDelta{Tree: 9, Key: "b", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 2, Key: "z", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 9, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	))
	got := c.Take()
	order := []struct {
		tree id.Tree
		key  string
	}{{2, "z"}, {9, "a"}, {9, "b"}}
	if len(got) != len(order) {
		t.Fatalf("Take returned %d groups, want %d", len(got), len(order))
	}
	for i, o := range order {
		if got[i].Tree != o.tree || got[i].Key != o.key {
			t.Fatalf("Take[%d] = (%d,%q), want (%d,%q)", i, got[i].Tree, got[i].Key, o.tree, o.key)
		}
	}
}

func TestCoalescerDropTree(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1,
		GroupDelta{Tree: 4, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 4, Key: "b", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 5, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	))
	if n := c.DropTree(4); n != 2 {
		t.Fatalf("DropTree = %d, want 2", n)
	}
	got := c.Take()
	if len(got) != 1 || got[0].Tree != 5 {
		t.Fatalf("after drop, Take = %+v, want tree 5 only", got)
	}
}

func TestCoalescerThreadsSpansAndPublishClock(t *testing.T) {
	c := NewCoalescer()
	c.Add(&Batch{TS: 1, WallNs: 500, Span: 11, Groups: []GroupDelta{
		{Tree: 7, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	}})
	c.Add(&Batch{TS: 2, WallNs: 300, Span: 22, Groups: []GroupDelta{
		{Tree: 7, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		{Tree: 7, Key: "b", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	}})
	c.Add(&Batch{TS: 3, WallNs: 900, Span: 11, Groups: []GroupDelta{ // dup span
		{Tree: 7, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	}})
	if got := c.OldestPendingWallNs(7); got != 300 {
		t.Fatalf("OldestPendingWallNs = %d, want 300", got)
	}
	if got := c.OldestPendingWallNs(9); got != 0 {
		t.Fatalf("OldestPendingWallNs of idle tree = %d, want 0", got)
	}
	taken := c.Take()
	if len(taken) != 2 {
		t.Fatalf("Take returned %d groups, want 2", len(taken))
	}
	a := taken[0] // (7,"a") sorts first
	if !reflect.DeepEqual(a.Spans, []uint64{11, 22}) {
		t.Fatalf("group a spans = %v, want [11 22] (deduped, arrival order)", a.Spans)
	}
	if a.OldestWallNs != 300 {
		t.Fatalf("group a OldestWallNs = %d, want the earliest publish 300", a.OldestWallNs)
	}
	// A failed round's re-queue keeps causality: spans and clock survive.
	c.AddGroups(taken)
	c.Add(&Batch{TS: 4, WallNs: 1000, Span: 33, Groups: []GroupDelta{
		{Tree: 7, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	}})
	retaken := c.Take()
	if !reflect.DeepEqual(retaken[0].Spans, []uint64{11, 22, 33}) {
		t.Fatalf("requeued spans = %v, want [11 22 33]", retaken[0].Spans)
	}
	if retaken[0].OldestWallNs != 300 {
		t.Fatalf("requeued OldestWallNs = %d, want 300", retaken[0].OldestWallNs)
	}

	// The span cap bounds a hot group's list.
	c2 := NewCoalescer()
	for i := uint64(1); i <= 2*MaxGroupSpans; i++ {
		c2.Add(&Batch{TS: i, WallNs: int64(i), Span: i, Groups: []GroupDelta{
			{Tree: 1, Key: "hot", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		}})
	}
	hot := c2.Take()
	if len(hot[0].Spans) != MaxGroupSpans {
		t.Fatalf("hot group holds %d spans, want capped at %d", len(hot[0].Spans), MaxGroupSpans)
	}
	if hot[0].Spans[0] != 1 {
		t.Fatalf("span cap evicted the oldest contributor: %v", hot[0].Spans)
	}
}

func TestCoalescerAddGroupsRequeues(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1, GroupDelta{Tree: 1, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 2}}}))
	taken := c.Take()
	// Simulate a failed round racing a new publish, then the re-queue.
	c.Add(batch(2, GroupDelta{Tree: 1, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 3}}}))
	c.AddGroups(taken)
	got := c.Take()
	if len(got) != 1 || got[0].Deltas[0].Int != 5 {
		t.Fatalf("requeued merge = %+v, want single group Int 5", got)
	}
}
