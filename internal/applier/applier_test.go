package applier

import (
	"reflect"
	"testing"

	"repro/internal/id"
	"repro/internal/wal"
)

func batch(ts uint64, groups ...GroupDelta) *Batch {
	return &Batch{TS: ts, Groups: groups}
}

func TestCoalescerMergesPerGroup(t *testing.T) {
	c := NewCoalescer()
	in, co := c.Add(batch(1, GroupDelta{Tree: 7, Key: "a", Deltas: []wal.ColDelta{
		{Col: 0, Int: 1}, {Col: 1, Int: 10},
	}}))
	if in != 2 || co != 0 {
		t.Fatalf("first add: in=%d coalesced=%d, want 2/0", in, co)
	}
	in, co = c.Add(batch(2, GroupDelta{Tree: 7, Key: "a", Deltas: []wal.ColDelta{
		{Col: 0, Int: 1}, {Col: 1, Int: -4},
	}}))
	if in != 2 || co != 2 {
		t.Fatalf("second add: in=%d coalesced=%d, want 2/2", in, co)
	}
	got := c.Take()
	want := []GroupDelta{{Tree: 7, Key: "a", Deltas: []wal.ColDelta{
		{Col: 0, Int: 2}, {Col: 1, Int: 6},
	}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Take = %+v, want %+v", got, want)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after Take = %d, want 0", c.Len())
	}
}

func TestCoalescerKeepsIntAndFloatCellsExact(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1, GroupDelta{Tree: 3, Key: "k", Deltas: []wal.ColDelta{
		{Col: 2, Int: 5},
		{Col: 2, IsFloat: true, Float: 0.5},
	}}))
	c.Add(batch(2, GroupDelta{Tree: 3, Key: "k", Deltas: []wal.ColDelta{
		{Col: 2, IsFloat: true, Float: 0.25},
	}}))
	got := c.Take()
	want := []GroupDelta{{Tree: 3, Key: "k", Deltas: []wal.ColDelta{
		{Col: 2, Int: 5},
		{Col: 2, IsFloat: true, Float: 0.75},
	}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Take = %+v, want %+v", got, want)
	}
}

func TestCoalescerTakeSortsAcrossTreesAndKeys(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1,
		GroupDelta{Tree: 9, Key: "b", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 2, Key: "z", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 9, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	))
	got := c.Take()
	order := []struct {
		tree id.Tree
		key  string
	}{{2, "z"}, {9, "a"}, {9, "b"}}
	if len(got) != len(order) {
		t.Fatalf("Take returned %d groups, want %d", len(got), len(order))
	}
	for i, o := range order {
		if got[i].Tree != o.tree || got[i].Key != o.key {
			t.Fatalf("Take[%d] = (%d,%q), want (%d,%q)", i, got[i].Tree, got[i].Key, o.tree, o.key)
		}
	}
}

func TestCoalescerDropTree(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1,
		GroupDelta{Tree: 4, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 4, Key: "b", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		GroupDelta{Tree: 5, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
	))
	if n := c.DropTree(4); n != 2 {
		t.Fatalf("DropTree = %d, want 2", n)
	}
	got := c.Take()
	if len(got) != 1 || got[0].Tree != 5 {
		t.Fatalf("after drop, Take = %+v, want tree 5 only", got)
	}
}

func TestCoalescerAddGroupsRequeues(t *testing.T) {
	c := NewCoalescer()
	c.Add(batch(1, GroupDelta{Tree: 1, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 2}}}))
	taken := c.Take()
	// Simulate a failed round racing a new publish, then the re-queue.
	c.Add(batch(2, GroupDelta{Tree: 1, Key: "a", Deltas: []wal.ColDelta{{Col: 0, Int: 3}}}))
	c.AddGroups(taken)
	got := c.Take()
	if len(got) != 1 || got[0].Deltas[0].Int != 5 {
		t.Fatalf("requeued merge = %+v, want single group Int 5", got)
	}
}
