// Package applier holds the data plane of the deferred view-maintenance tier
// (DESIGN.md §9): the delta batches committers publish off the commit path and
// the coalescer the background applier folds them through.
//
// A transaction touching a deferred view accumulates its escrow-style cell
// deltas in the ordinary ledger; at commit, instead of folding them into the
// view rows inline, the engine packages them as a Batch stamped with the
// commit timestamp and hands it to the applier queue. The applier owns a
// Coalescer exclusively (single goroutine, no locks): batches merge per
// (view, group) so each group is folded into its B-tree row exactly once per
// apply round no matter how many commits piled deltas onto it — the
// shared-delta batching win that makes the deferred tier cheaper than the sum
// of its transactions.
package applier

import (
	"sort"

	"repro/internal/id"
	"repro/internal/wal"
)

// MaxGroupSpans caps how many originating spans a coalesced group accumulates
// — enough to link a fold back to its recent contributors without letting a
// hot group's span list grow with the coalescing depth.
const MaxGroupSpans = 8

// GroupDelta is the net escrow delta a set of commits contributed to one
// group row of one deferred view.
type GroupDelta struct {
	Tree   id.Tree
	Key    string // encoded group key
	Deltas []wal.ColDelta
	// Spans are the causal span IDs of the originating commits (deduped,
	// capped at MaxGroupSpans), threaded across the async boundary so applier
	// folds and watermark advances can name their causes.
	Spans []uint64
	// OldestWallNs is the earliest contributing publish's wall clock — the
	// group's commit-to-visible clock starts here.
	OldestWallNs int64
}

// Batch is one committed transaction's deferred-view deltas, published to the
// applier queue after the commit timestamp is allocated and its versions are
// stamped, but before the oracle watermark may advance over it — so a drained
// queue observed after reading the watermark covers every commit at or below
// it.
type Batch struct {
	// TS is the publishing transaction's commit timestamp.
	TS uint64
	// WallNs is the publish wall-clock (UnixNano), the staleness clock.
	WallNs int64
	// Span is the publishing transaction's causal span ID (zero when the
	// flight recorder is off), carried across the async boundary so the
	// applier can stamp downstream events with their originating commits.
	Span uint64
	// Groups are the commit's per-(view, group) net deltas.
	Groups []GroupDelta
}

// Barrier is a catalog-ordered control message: a view refresh (or create
// backfill, or drop) recomputed the view from its base tables as of commit
// timestamp TS, so every delta pending for the view is already incorporated
// and must be discarded, and the view's watermark jumps to TS. Publication
// order against Batch messages is the correctness argument: the refresh holds
// the base tables' S locks through its commit, so any commit whose deltas are
// NOT in the recompute allocates a later timestamp and publishes after the
// barrier.
type Barrier struct {
	Tree id.Tree
	TS   uint64
	// Drop marks a dropped view: pending deltas are discarded and the
	// watermark entry is removed rather than advanced.
	Drop bool
}

// Msg is one applier-queue entry: exactly one of Batch or Barrier is set.
type Msg struct {
	Batch   *Batch
	Barrier *Barrier
}

// groupID keys the coalescer's pending table.
type groupID struct {
	tree id.Tree
	key  string
}

// cellKey distinguishes the integer and float accumulator of one column.
type cellKey struct {
	col     uint32
	isFloat bool
}

// pendingGroup is one group's accumulated deltas. Column order of first
// arrival is preserved so folds stay deterministic.
type pendingGroup struct {
	cols  []wal.ColDelta
	index map[cellKey]int
	// spans are the contributing commits' causal spans (deduped, capped at
	// MaxGroupSpans); oldestWallNs the earliest contributing publish.
	spans        []uint64
	oldestWallNs int64
}

// Coalescer merges published batches per (view, group) with exactly-one-fold
// semantics. It is owned by the single applier goroutine and is NOT safe for
// concurrent use — publication happens through the queue, never directly.
type Coalescer struct {
	pending map[groupID]*pendingGroup
}

// NewCoalescer returns an empty coalescer.
func NewCoalescer() *Coalescer {
	return &Coalescer{pending: make(map[groupID]*pendingGroup)}
}

// Add merges a batch's groups into the pending table, threading the batch's
// causal span and publish clock into each group it feeds. It returns how many
// cell deltas arrived and how many of them coalesced into an already-pending
// accumulator (the folds saved versus immediate maintenance).
func (c *Coalescer) Add(b *Batch) (in, coalesced int) {
	for i := range b.Groups {
		g := b.Groups[i]
		if g.OldestWallNs == 0 {
			g.OldestWallNs = b.WallNs
		}
		if b.Span != 0 && len(g.Spans) == 0 {
			g.Spans = []uint64{b.Span}
		}
		in += len(g.Deltas)
		coalesced += c.addGroup(g)
	}
	return in, coalesced
}

// AddGroups re-queues previously taken groups (a failed apply round); their
// spans and publish clocks ride along so causality survives the retry.
func (c *Coalescer) AddGroups(groups []GroupDelta) {
	for _, g := range groups {
		c.addGroup(g)
	}
}

func (c *Coalescer) addGroup(g GroupDelta) (coalesced int) {
	gid := groupID{tree: g.Tree, key: g.Key}
	pg := c.pending[gid]
	if pg == nil {
		pg = &pendingGroup{index: make(map[cellKey]int, len(g.Deltas))}
		c.pending[gid] = pg
	} else {
		coalesced = len(g.Deltas)
	}
	if g.OldestWallNs != 0 && (pg.oldestWallNs == 0 || g.OldestWallNs < pg.oldestWallNs) {
		pg.oldestWallNs = g.OldestWallNs
	}
	pg.spans = MergeSpans(pg.spans, g.Spans)
	for _, d := range g.Deltas {
		ck := cellKey{col: d.Col, isFloat: d.IsFloat}
		if i, ok := pg.index[ck]; ok {
			if d.IsFloat {
				pg.cols[i].Float += d.Float
			} else {
				pg.cols[i].Int += d.Int
			}
			continue
		}
		pg.index[ck] = len(pg.cols)
		pg.cols = append(pg.cols, d)
	}
	return coalesced
}

// DropTree discards every pending group of one view (a Barrier: the deltas
// are already incorporated in a recompute, or the view is gone). It returns
// how many groups were dropped.
func (c *Coalescer) DropTree(tree id.Tree) int {
	dropped := 0
	for gid := range c.pending {
		if gid.tree == tree {
			delete(c.pending, gid)
			dropped++
		}
	}
	return dropped
}

// MergeSpans appends add's spans to have, deduplicating and respecting the
// MaxGroupSpans cap (oldest contributors win: they are the ones the staleness
// clock points at).
func MergeSpans(have, add []uint64) []uint64 {
	for _, s := range add {
		if len(have) >= MaxGroupSpans {
			break
		}
		if s == 0 {
			continue
		}
		dup := false
		for _, h := range have {
			if h == s {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, s)
		}
	}
	return have
}

// Len returns the number of pending (view, group) accumulators.
func (c *Coalescer) Len() int { return len(c.pending) }

// OldestPendingWallNs returns the earliest publish wall clock among every
// pending group of tree, or zero when none is pending — the per-view
// staleness clock the applier exports between rounds.
func (c *Coalescer) OldestPendingWallNs(tree id.Tree) int64 {
	var oldest int64
	for gid, pg := range c.pending {
		if gid.tree != tree || pg.oldestWallNs == 0 {
			continue
		}
		if oldest == 0 || pg.oldestWallNs < oldest {
			oldest = pg.oldestWallNs
		}
	}
	return oldest
}

// Take removes and returns every pending group, sorted by (tree, key) so the
// applier folds in a deterministic order. A failed round hands them back via
// AddGroups.
func (c *Coalescer) Take() []GroupDelta {
	if len(c.pending) == 0 {
		return nil
	}
	out := make([]GroupDelta, 0, len(c.pending))
	for gid, pg := range c.pending {
		out = append(out, GroupDelta{
			Tree: gid.tree, Key: gid.key, Deltas: pg.cols,
			Spans: pg.spans, OldestWallNs: pg.oldestWallNs,
		})
	}
	c.pending = make(map[groupID]*pendingGroup)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tree != out[j].Tree {
			return out[i].Tree < out[j].Tree
		}
		return out[i].Key < out[j].Key
	})
	return out
}
