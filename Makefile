GO ?= go

# Seeds for the full torture tier; the smoke tier is what CI runs per push.
TORTURE_SEEDS ?= 100
TORTURE_SMOKE_SEEDS ?= 25

.PHONY: all verify race vet fmt lint torture torture-smoke bench-smoke baseline metrics-smoke flightrec-smoke hotspots-smoke mvcc-smoke

all: verify

# Tier-1: must stay green on every commit.
verify:
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) flightrec-smoke
	$(MAKE) hotspots-smoke
	$(MAKE) mvcc-smoke

# Forensics smoke: induce a real deadlock and assert the flight recorder's
# automatic dump fires and its JSONL output parses with both transactions'
# causal spans present.
flightrec-smoke:
	$(GO) run ./cmd/flightrecsmoke

# Attribution smoke: drive a Zipf-skewed escrow workload and assert the true
# hottest group is named consistently by DB.Metrics() and the Prometheus
# endpoint, with the Space-Saving error bound held.
hotspots-smoke:
	$(GO) run ./cmd/hotspotsmoke

# MVCC smoke: truth-check the snapshot read path — sum-preserving escrow
# writers vs read-only snapshot readers, snapshot stability across commits,
# and the pruner draining every version chain once readers retire.
mvcc-smoke:
	$(GO) run ./cmd/mvccsmoke

# Race tier: the short test set under the race detector.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt

# Crash-torture tier: seeded fault-injection episodes through crash,
# recovery, and the recompute-from-base consistency check.
torture:
	$(GO) run ./cmd/vtxntorture -seeds $(TORTURE_SEEDS)

torture-smoke:
	$(GO) run ./cmd/vtxntorture -seeds $(TORTURE_SMOKE_SEEDS)

# Bench-smoke tier: run the headline experiments (F2 writes, T5R snapshot
# reads) at smoke scale and gate their throughput (>30% regression fails) and
# allocs/op (>20% growth fails) against the committed baseline; -require pins
# both so a dropped experiment fails loudly. Also captures the headline run's
# metrics snapshot; CI uploads both JSON files as artifacts.
bench-smoke:
	$(GO) run ./cmd/viewbench -exp F2,T5R -smoke -json BENCH_results.json -metrics BENCH_metrics.json
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -fresh BENCH_results.json -require F2,T5R

# Observability smoke: run the headline experiment with metrics + tracing on
# and pretty-print the snapshot — a quick eyeball check that every series is
# populated.
metrics-smoke:
	$(GO) run ./cmd/viewbench -exp F2 -smoke -json '' -metrics BENCH_metrics.json -trace-slow 50ms
	@cat BENCH_metrics.json

# Refresh the committed bench-smoke baseline (run on an idle machine).
baseline:
	$(GO) run ./cmd/viewbench -exp F2,T5R -smoke -json BENCH_baseline.json
