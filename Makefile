GO ?= go

# Seeds for the full torture tier; the smoke tier is what CI runs per push.
TORTURE_SEEDS ?= 100
TORTURE_SMOKE_SEEDS ?= 25

.PHONY: all verify race vet fmt staticcheck lint torture torture-smoke bench-smoke baseline metrics-smoke flightrec-smoke hotspots-smoke mvcc-smoke deferred-smoke viewdag-smoke freshness-smoke scrub-smoke scrub-long

all: verify

# Tier-1: must stay green on every commit.
verify:
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) flightrec-smoke
	$(MAKE) hotspots-smoke
	$(MAKE) mvcc-smoke
	$(MAKE) deferred-smoke
	$(MAKE) viewdag-smoke
	$(MAKE) freshness-smoke
	$(MAKE) scrub-smoke

# Forensics smoke: induce a real deadlock and assert the flight recorder's
# automatic dump fires and its JSONL output parses with both transactions'
# causal spans present.
flightrec-smoke:
	$(GO) run ./cmd/flightrecsmoke

# Attribution smoke: drive a Zipf-skewed escrow workload and assert the true
# hottest group is named consistently by DB.Metrics() and the Prometheus
# endpoint, with the Space-Saving error bound held.
hotspots-smoke:
	$(GO) run ./cmd/hotspotsmoke

# MVCC smoke: truth-check the snapshot read path — sum-preserving escrow
# writers vs read-only snapshot readers, snapshot stability across commits,
# and the pruner draining every version chain once readers retire.
mvcc-smoke:
	$(GO) run ./cmd/mvccsmoke

# Deferred smoke: truth-check the deferred view-maintenance tier — the
# watermark barrier gives read-your-writes, watermarks only move forward,
# snapshot reads of the deferred view are never torn, and the applier drains
# to zero lag at quiesce with the view equal to a recompute from base.
deferred-smoke:
	$(GO) run ./cmd/deferredsmoke

# View-DAG smoke: truth-check stacked views — concurrent sum-preserving
# writers against snapshot readers over the 3-level rollup chain, asserting
# cross-level agreement on every scan (no torn cascades), coalesced folds in
# topological order, and a no-op cascading refresh at quiesce; runs the chain
# once escrow-maintained and once fully deferred.
viewdag-smoke:
	$(GO) run ./cmd/viewdagsmoke

# Freshness smoke: truth-check the observability plane — one marked commit's
# causal span crosses the deferred boundary into every level of the rollup
# chain (publish → fold → watermark advance, over the JSONL flight record),
# the per-view commit-to-visible accounting nests inside a client-measured
# window with staleness gauges at zero when drained, and an injected applier
# delay trips the freshness-SLO watchdog naming the lagging view.
freshness-smoke:
	$(GO) run ./cmd/freshnesssmoke

# Scrub smoke: truth-check the online consistency scrubber in both
# directions — silence on a healthy engine (zero divergences with full
# coverage under concurrent tilt writers over an immediate view plus the
# 3-level deferred chain), and guaranteed detection of an injected one-row
# view corruption with exact (view, group) attribution, the divergence trace
# event, a flight-record dump, and the watchdog's scrub-divergence signature.
scrub-smoke:
	$(GO) run ./cmd/scrubsmoke

# Nightly soak: the same truth check with a 40x larger write storm and a
# longer live-scrub window.
scrub-long:
	$(GO) run ./cmd/scrubsmoke -long

# Race tier: the short test set under the race detector.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck is optional locally (skipped when not on PATH); CI installs it
# so the lint job always runs the full set.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

lint: vet fmt staticcheck

# Crash-torture tier: seeded fault-injection episodes through crash,
# recovery, and the recompute-from-base consistency check.
torture:
	$(GO) run ./cmd/vtxntorture -seeds $(TORTURE_SEEDS)

torture-smoke:
	$(GO) run ./cmd/vtxntorture -seeds $(TORTURE_SMOKE_SEEDS)

# Bench-smoke tier: run the headline experiments (F2 writes, T5R snapshot
# reads, F9D deferred applier, DAG rollup chain) at smoke scale and gate their
# throughput (>30% regression fails), allocs/op (>20% growth fails), and p99
# commit-to-visible (>5x growth fails, where the baseline records it — the
# wide ceiling absorbs scheduler jitter on µs-scale latencies while still
# catching an applier that stalls into milliseconds) against the committed
# baseline; -require pins all four so a dropped experiment fails loudly.
# Fresh results go to untracked BENCH_fresh*.json so the run never dirties
# the committed baseline; CI uploads them as artifacts.
# The scrubber runs live (-scrub 25ms, engine-default tick and pace) so the
# gate also proves continuous verification stays inside the regression
# thresholds.
bench-smoke:
	$(GO) run ./cmd/viewbench -exp F2,T5R,F9D,DAG -smoke -freshness -scrub 25ms -json BENCH_fresh.json -metrics BENCH_fresh_metrics.json -flight-sink BENCH_fresh_flight.jsonl
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -fresh BENCH_fresh.json -require F2,T5R,F9D,DAG -freshness-threshold 4

# Observability smoke: run the headline experiment with metrics + tracing on
# and pretty-print the snapshot — a quick eyeball check that every series is
# populated.
metrics-smoke:
	$(GO) run ./cmd/viewbench -exp F2 -smoke -json '' -metrics BENCH_fresh_metrics.json -trace-slow 50ms
	@cat BENCH_fresh_metrics.json

# Refresh the committed bench-smoke baseline (run on an idle machine).
baseline:
	$(GO) run ./cmd/viewbench -exp F2,T5R,F9D,DAG -smoke -freshness -json BENCH_baseline.json
