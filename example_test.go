package vtxn_test

import (
	"fmt"
	"log"
	"os"

	vtxn "repro"
)

// Example demonstrates the core flow: an escrow-maintained aggregate
// indexed view that is exactly consistent at every commit.
func Example() {
	dir, err := os.MkdirTemp("", "vtxn-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
	}); err != nil {
		log.Fatal(err)
	}

	tx, _ := db.Begin(vtxn.ReadCommitted)
	for i := int64(1); i <= 4; i++ {
		if err := tx.Insert("accounts", vtxn.Row{vtxn.Int(i), vtxn.Int(i % 2), vtxn.Int(i * 10)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	tx, _ = db.Begin(vtxn.ReadCommitted)
	rows, err := tx.ScanView("branch_totals")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("branch %d: count=%d sum=%d\n",
			r.Key[0].AsInt(), r.Result[0].AsInt(), r.Result[1].AsInt())
	}
	tx.Commit()
	// Output:
	// branch 0: count=2 sum=60
	// branch 1: count=2 sum=40
}
