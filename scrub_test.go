package vtxn_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	vtxn "repro"
)

// TestScrubBackgroundCleanRun drives commits against escrow, deferred, and
// stacked views with the background scrubber on a tight interval, and asserts
// it completes full cycles with zero divergences — the online twin of
// CheckConsistency agreeing with it under live traffic.
func TestScrubBackgroundCleanRun(t *testing.T) {
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{ScrubInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals_deferred",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyDeferred,
	}); err != nil {
		t.Fatal(err)
	}
	seedAccounts(t, db, 16)

	// Concurrent writers keep folds landing while the scrubber verifies.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tx, err := db.Begin(vtxn.ReadCommitted)
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Update("accounts", vtxn.Row{vtxn.Int(int64((w*5 + i) % 16))},
					map[int]vtxn.Value{2: vtxn.Int(int64(100 + i))}); err != nil {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		s := db.Metrics().Scrub
		if !s.Enabled {
			t.Fatal("scrubber not enabled despite ScrubInterval > 0")
		}
		if s.Divergences != 0 {
			t.Fatalf("background scrubber reported %d divergences on a healthy engine", s.Divergences)
		}
		if s.Cycles >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no full scrub cycle completed: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n, err := db.ScrubNow(context.Background()); err != nil || n != 0 {
		t.Fatalf("ScrubNow = %d, %v; want 0, nil", n, err)
	}
	s := db.Metrics().Scrub
	for _, v := range s.Views {
		if v.Passes == 0 || v.CoverageTS == 0 {
			t.Fatalf("view %q has no coverage after a full pass: %+v", v.View, v)
		}
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubDetectsCorruption corrupts one view row in place and asserts
// ScrubNow finds it with exact (view, group) attribution: counted globally,
// attributed per-view, traced, and flight-dumped.
func TestScrubDetectsCorruption(t *testing.T) {
	var sink bytes.Buffer
	rec := &recordingTracer{}
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{
		ScrubInterval: -1, // on-demand only: a background pass would race the assertions
		FlightSink:    &sink,
		Tracer:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	seedAccounts(t, db, 8)

	// Writers are quiesced; collapse version chains so the corrupted stored
	// row is what every snapshot resolves to.
	db.PruneVersions()
	if err := db.CorruptViewRow("branch_totals", vtxn.Row{vtxn.Int(1)}); err != nil {
		t.Fatal(err)
	}

	n, err := db.ScrubNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ScrubNow found %d divergences, want exactly 1", n)
	}
	s := db.Metrics().Scrub
	if s.Divergences != 1 {
		t.Fatalf("scrub.divergences = %d, want 1", s.Divergences)
	}
	for _, v := range s.Views {
		want := int64(0)
		if v.View == "branch_totals" {
			want = 1
		}
		if v.Divergences != want {
			t.Fatalf("view %q divergences = %d, want %d", v.View, v.Divergences, want)
		}
	}
	var ev vtxn.TraceEvent
	found := false
	for _, e := range rec.snapshot() {
		if e.Type == vtxn.TraceScrubDivergence {
			ev, found = e, true
		}
	}
	if !found {
		t.Fatal("no TraceScrubDivergence event emitted")
	}
	if ev.Resource != "branch_totals" || !strings.Contains(ev.Phase, "1") {
		t.Fatalf("divergence event misattributed: %+v", ev)
	}
	if !strings.Contains(ev.Outcome, "expected") || !strings.Contains(ev.Outcome, "actual") {
		t.Fatalf("divergence event missing expected/actual detail: %+v", ev)
	}
	if !strings.Contains(sink.String(), "scrub divergence") || !strings.Contains(sink.String(), "branch_totals") {
		t.Fatalf("flight record not dumped on divergence:\n%.400s", sink.String())
	}
}
