package vtxn_test

import (
	"errors"
	"testing"

	vtxn "repro"
)

// openDB opens a fresh database via the public API only.
func openDB(t *testing.T) *vtxn.DB {
	t.Helper()
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func setupPublic(t *testing.T, db *vtxn.DB) {
	t.Helper()
	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyEscrow,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)

	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if err := tx.Insert("accounts", vtxn.Row{vtxn.Int(i), vtxn.Int(i % 2), vtxn.Int(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx, _ = db.Begin(vtxn.ReadCommitted)
	res, ok, err := tx.GetViewRow("branch_totals", vtxn.Row{vtxn.Int(1)})
	if err != nil || !ok {
		t.Fatalf("view read: %v %v", ok, err)
	}
	// Odd ids: 1,3,5,7,9 → count 5, sum 10+30+50+70+90 = 250.
	if res[0].AsInt() != 5 || res[1].AsInt() != 250 {
		t.Fatalf("branch 1 = %v", res)
	}
	rows, err := tx.ScanView("branch_totals")
	if err != nil || len(rows) != 2 {
		t.Fatalf("scan view: %v %v", rows, err)
	}
	tx.Commit()

	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Commits == 0 || st.Folds == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublicAPIErrorsAndValues(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	tx, _ := db.Begin(vtxn.Serializable)
	defer tx.Rollback()
	if err := tx.Insert("accounts", vtxn.Row{vtxn.Null(), vtxn.Int(1), vtxn.Int(1)}); !errors.Is(err, vtxn.ErrSchema) {
		t.Fatalf("null PK err = %v", err)
	}
	if err := tx.Delete("accounts", vtxn.Row{vtxn.Int(404)}); !errors.Is(err, vtxn.ErrNotFound) {
		t.Fatalf("missing delete err = %v", err)
	}
	// Value constructors round-trip via the facade.
	vals := vtxn.Row{vtxn.Bool(true), vtxn.Float(2.5), vtxn.Str("x"), vtxn.Bytes([]byte{1})}
	if vals[0].Kind() != vtxn.KindBool || vals[1].Kind() != vtxn.KindFloat64 ||
		vals[2].Kind() != vtxn.KindString || vals[3].Kind() != vtxn.KindBytes {
		t.Fatal("facade value kinds wrong")
	}
}

func TestPublicAPIExpressionsInViews(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable("events", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "kind", Kind: vtxn.KindString},
		{Name: "weight", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	// A filtered view with a computed aggregate: SUM(weight*2) for heavy
	// events, excluding kind "noise".
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name: "heavy", Kind: vtxn.ViewAggregate, Left: "events",
		Where: vtxn.And(
			vtxn.Gt(vtxn.Col(2), vtxn.ConstInt(5)),
			vtxn.Not(vtxn.Eq(vtxn.Col(1), vtxn.ConstStr("noise"))),
		),
		GroupByCols: []int{1},
		Aggs:        []vtxn.AggSpec{{Func: vtxn.AggSum, Arg: vtxn.Mul(vtxn.Col(2), vtxn.ConstInt(2))}},
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin(vtxn.ReadCommitted)
	rows := []vtxn.Row{
		{vtxn.Int(1), vtxn.Str("a"), vtxn.Int(10)},     // in: 20
		{vtxn.Int(2), vtxn.Str("a"), vtxn.Int(3)},      // filtered: weight <= 5
		{vtxn.Int(3), vtxn.Str("noise"), vtxn.Int(50)}, // filtered: noise
		{vtxn.Int(4), vtxn.Str("a"), vtxn.Int(7)},      // in: 14
	}
	for _, r := range rows {
		if err := tx.Insert("events", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ = db.Begin(vtxn.ReadCommitted)
	res, ok, err := tx.GetViewRow("heavy", vtxn.Row{vtxn.Str("a")})
	if err != nil || !ok || res[0].AsInt() != 34 {
		t.Fatalf("heavy[a] = %v %v %v", res, ok, err)
	}
	if _, ok, _ := tx.GetViewRow("heavy", vtxn.Row{vtxn.Str("noise")}); ok {
		t.Fatal("noise group should not exist")
	}
	tx.Commit()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupPublic(t, db)
	tx, _ := db.Begin(vtxn.ReadCommitted)
	tx.Insert("accounts", vtxn.Row{vtxn.Int(1), vtxn.Int(0), vtxn.Int(100)})
	tx.Commit()
	db.Crash(true)

	db2, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx, _ = db2.Begin(vtxn.ReadCommitted)
	res, ok, err := tx.GetViewRow("branch_totals", vtxn.Row{vtxn.Int(0)})
	if err != nil || !ok || res[1].AsInt() != 100 {
		t.Fatalf("recovered view = %v %v %v", res, ok, err)
	}
	tx.Commit()
	if err := db2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
