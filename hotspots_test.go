package vtxn_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	vtxn "repro"
	"repro/internal/flightrec"
	"repro/internal/workload"
)

// TestHotGroupAgreement is the acceptance check for hot-spot attribution:
// under a Zipf(1.1)-skewed escrow workload the true hottest view group must
// be the top escrow heavy hitter in DB.Metrics(), and a lock convoy's stall
// report (EventStall detail and the flight-recorder auto-dump) must name the
// same group that tops the lock-wait listing. The third surface, the
// vtxnshell top dashboard, renders the same DB.Metrics() snapshot and is
// checked against its own skewed workload in cmd/vtxnshell's TestShellTop.
func TestHotGroupAgreement(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)

	// Phase 1: Zipf-skewed inserts with client-side truth counting.
	const (
		groups  = 64
		writers = 4
		perW    = 200
	)
	truth := make([]int64, groups)
	var truthMu sync.Mutex
	var idMu sync.Mutex
	var ids int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pick := workload.Zipf(rng, 1.1, groups)
			local := make([]int64, groups)
			for i := 0; i < perW; i++ {
				branch := pick()
				idMu.Lock()
				ids++
				id := ids
				idMu.Unlock()
				tx, err := db.Begin(vtxn.ReadCommitted)
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Insert("accounts", vtxn.Row{
					vtxn.Int(id), vtxn.Int(int64(branch)), vtxn.Int(10),
				}); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				local[branch]++
			}
			truthMu.Lock()
			for g, n := range local {
				truth[g] += n
			}
			truthMu.Unlock()
		}(int64(w + 1))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	hottest, hottestN := 0, int64(0)
	for g, n := range truth {
		if n > hottestN {
			hottest, hottestN = g, n
		}
	}

	snap := db.Metrics()
	if len(snap.Hotspots.TopDelta) == 0 {
		t.Fatal("hotspots.top_delta is empty after the skewed workload")
	}
	top := snap.Hotspots.TopDelta[0]
	if top.View != "branch_totals" || top.Key != fmt.Sprintf("%d", hottest) {
		t.Fatalf("top_delta[0] = %s[%s], want branch_totals[%d] (true count %d)",
			top.View, top.Key, hottest, hottestN)
	}

	// Phase 2: a lock convoy on one hot row. A dedicated watchdog (tight
	// intervals, same DB.Metrics feed as the engine's own) must name the
	// group that tops the lock-wait listing, in both the EventStall detail
	// and the flight-recorder auto-dump.
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("accounts", vtxn.Row{vtxn.Int(1_000_000), vtxn.Int(0), vtxn.Int(10)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var dump bytes.Buffer
	rec := flightrec.New(flightrec.Config{Sink: &dump, MinDumpGap: time.Millisecond})
	tracer := &recordingTracer{}
	wd := flightrec.StartWatchdog(flightrec.WatchdogConfig{
		Interval:       25 * time.Millisecond,
		StallThreshold: 10 * time.Millisecond,
		Snap:           db.Metrics,
		Tracer:         tracer,
		Recorder:       rec,
	})
	stopWd := sync.OnceFunc(wd.Close)
	defer stopWd()

	holder, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Rollback()
	if err := holder.Update("accounts", vtxn.Row{vtxn.Int(1_000_000)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
		t.Fatal(err)
	}
	waiter, err := db.BeginTx(t.Context(), vtxn.TxOptions{
		Isolation:   vtxn.ReadCommitted,
		LockTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Rollback()
	if err := waiter.Update("accounts", vtxn.Row{vtxn.Int(1_000_000)}, map[int]vtxn.Value{2: vtxn.Int(2)}); err == nil {
		t.Fatal("expected the convoyed wait to time out")
	}

	var stall vtxn.TraceEvent
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, e := range tracer.snapshot() {
			if e.Type == vtxn.TraceStall && e.Phase == "lock-convoy" {
				stall, found = e, true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never reported a lock convoy; events: %+v", tracer.snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Stop the watchdog before inspecting the dump buffer it writes to.
	stopWd()

	cur := db.Metrics()
	if len(cur.Hotspots.TopWait) == 0 {
		t.Fatal("hotspots.top_wait is empty after the convoy")
	}
	wait := cur.Hotspots.TopWait[0]
	if wait.View != "accounts" || wait.Key != "1000000" {
		t.Fatalf("top_wait[0] = %s[%s], want accounts[1000000]", wait.View, wait.Key)
	}
	needle := fmt.Sprintf("hottest group %s[%s]", wait.View, wait.Key)
	if !strings.Contains(stall.Resource, needle) {
		t.Fatalf("convoy stall detail %q does not name %q", stall.Resource, needle)
	}
	if !strings.Contains(dump.String(), needle) {
		t.Fatalf("flight-recorder auto-dump does not name %q:\n%s", needle, dump.String())
	}
}
