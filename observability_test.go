package vtxn_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	vtxn "repro"
)

// seedAccounts inserts n rows spread over two branches.
func seedAccounts(t *testing.T, db *vtxn.DB, n int) {
	t.Helper()
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tx.Insert("accounts", vtxn.Row{vtxn.Int(int64(i)), vtxn.Int(int64(i % 2)), vtxn.Int(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockSentinel induces a real deadlock (two transactions updating
// two rows in opposite orders) and asserts the victim's error unwraps to the
// public sentinel.
func TestDeadlockSentinel(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	seedAccounts(t, db, 2)

	errs := make(chan error, 2)
	var ready, release sync.WaitGroup
	ready.Add(2)
	release.Add(1)
	worker := func(first, second int64) {
		tx, err := db.Begin(vtxn.ReadCommitted)
		if err != nil {
			errs <- err
			return
		}
		defer tx.Rollback()
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(first)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
			ready.Done()
			errs <- err
			return
		}
		ready.Done()
		release.Wait() // both hold their first lock before crossing
		err = tx.Update("accounts", vtxn.Row{vtxn.Int(second)}, map[int]vtxn.Value{2: vtxn.Int(2)})
		if err != nil {
			errs <- err
			return
		}
		errs <- tx.Commit()
	}
	go worker(0, 1)
	go worker(1, 0)
	ready.Wait()
	release.Done()

	var victim error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && victim == nil {
			victim = err
		}
	}
	if victim == nil {
		t.Fatal("expected one transaction to fail as deadlock victim")
	}
	if !errors.Is(victim, vtxn.ErrDeadlock) {
		t.Fatalf("victim error %v does not unwrap to vtxn.ErrDeadlock", victim)
	}

	m := db.Metrics()
	if m.Lock.Deadlocks == 0 {
		t.Fatalf("lock metrics recorded no deadlock: %+v", m.Lock)
	}
	var shardDeadlocks int64
	for _, ps := range m.Lock.PerShard {
		shardDeadlocks += ps.Deadlocks
	}
	if shardDeadlocks == 0 {
		t.Fatal("deadlock not attributed to any lock shard")
	}
}

// TestLockTimeoutSentinel holds an X lock in one transaction and asserts a
// second transaction's bounded wait unwraps to vtxn.ErrLockTimeout.
func TestLockTimeoutSentinel(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	seedAccounts(t, db, 1)

	holder, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Rollback()
	if err := holder.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
		t.Fatal(err)
	}

	waiter, err := db.BeginTx(context.Background(), vtxn.TxOptions{
		Isolation:   vtxn.ReadCommitted,
		LockTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Rollback()
	err = waiter.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(2)})
	if err == nil {
		t.Fatal("expected the bounded lock wait to time out")
	}
	if !errors.Is(err, vtxn.ErrLockTimeout) {
		t.Fatalf("error %v does not unwrap to vtxn.ErrLockTimeout", err)
	}
	if m := db.Metrics(); m.Lock.Timeouts == 0 {
		t.Fatalf("lock metrics recorded no timeout: %+v", m.Lock)
	}
}

// TestBeginTxContextCancelAbortsLockWait cancels the transaction's context
// while it is blocked on a lock and asserts the wait returns promptly with a
// wrapped context error.
func TestBeginTxContextCancelAbortsLockWait(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	seedAccounts(t, db, 1)

	holder, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Rollback()
	if err := holder.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiter, err := db.BeginTx(ctx, vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Rollback()
	done := make(chan error, 1)
	go func() {
		done <- waiter.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(2)})
	}()
	time.Sleep(20 * time.Millisecond) // let the wait queue
	cancel()
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled lock wait did not return")
	}
	if err == nil {
		t.Fatal("expected the cancelled wait to fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// metricsSchema returns the golden JSON schema of DB.Metrics(): every key
// path of the snapshot encoding, sorted. Additions extend this list; renames
// and removals break the public API and must not happen silently.
func metricsSchema() []string {
	schema := []string{
		"cascade.coalesced", "cascade.deferred_out", "cascade.enqueued",
		"cascade.folds", "cascade.level_folds",
		"deferred.apply", "deferred.apply_rounds", "deferred.deltas_coalesced",
		"deferred.deltas_in", "deferred.groups_applied", "deferred.lag_ts",
		"deferred.pending_groups", "deferred.published_batches",
		"deferred.published_groups", "deferred.queue_high_water",
		"deferred.retry_rounds", "deferred.staleness_ns", "deferred.views",
		"deferred.views.tree", "deferred.views.view", "deferred.views.watermark",
		"deferred.watermark",
		"engine.aborts", "engine.commits", "engine.escalations",
		"engine.snapshot_unix_ns", "engine.sys_txns", "engine.uptime_ns",
		"escrow.fold_aborts", "escrow.fold_batch_max", "escrow.fold_batches",
		"escrow.fold_rows", "escrow.pending_rows", "escrow.pending_txns_high_water",
		"escrow.shards",
		"flightrec.capacity", "flightrec.dumps", "flightrec.enabled",
		"flightrec.recorded",
		"freshness.slo_ns", "freshness.views",
		"freshness.views.commit_to_visible", "freshness.views.staleness_ns",
		"freshness.views.strategy", "freshness.views.tree", "freshness.views.view",
		"ghosts.backlog", "ghosts.backlog_high_water", "ghosts.cleaner_passes",
		"ghosts.created", "ghosts.erased",
		"hotspots.sketch_capacity", "hotspots.top_delta", "hotspots.top_wait",
		"hotspots.views",
		"hotspots.views.fold_ns", "hotspots.views.rows_folded",
		"hotspots.views.tree", "hotspots.views.view", "hotspots.views.wal_bytes",
		"lock.collisions", "lock.deadlocks", "lock.last_sweep_ns",
		"lock.max_queue_depth", "lock.max_sweep_ns", "lock.per_shard",
		"lock.per_shard.collisions", "lock.per_shard.deadlocks",
		"lock.per_shard.max_queue_depth", "lock.per_shard.resources",
		"lock.per_shard.timeouts", "lock.per_shard.wait_ns", "lock.per_shard.waits",
		"lock.requests", "lock.shards", "lock.sweeps", "lock.timeouts",
		"lock.wait", "lock.waits",
		"mvcc.active_snapshots", "mvcc.chain_len_high_water", "mvcc.chains",
		"mvcc.oldest_snapshot_age_ns", "mvcc.prune_passes", "mvcc.snapshots",
		"mvcc.versions_pruned", "mvcc.versions_stamped", "mvcc.watermark",
		"recovery.analysis_ns", "recovery.fresh", "recovery.gen", "recovery.losers",
		"recovery.redo_ns", "recovery.replayed", "recovery.torn",
		"recovery.undo_ns", "recovery.undone_ops",
		"scrub.conflicts", "scrub.cycle_dur", "scrub.cycles", "scrub.divergences",
		"scrub.enabled", "scrub.last_full_pass_unix", "scrub.rows_verified",
		"scrub.slices", "scrub.snapshot_retries", "scrub.views",
		"scrub.views.coverage_ts", "scrub.views.divergences",
		"scrub.views.last_pass_unix_ns", "scrub.views.passes",
		"scrub.views.rows_verified", "scrub.views.tree", "scrub.views.view",
		"txn.apply", "txn.begin", "txn.commit_wait", "txn.fold", "txn.lock_wait",
		"wal.appends", "wal.batch_max", "wal.batch_records", "wal.coalesced_syncs",
		"wal.flush", "wal.flush_active_ns", "wal.flushes", "wal.fsync",
		"watchdog.detections", "watchdog.escrow_stalls", "watchdog.freshness_breaches",
		"watchdog.ghost_stalls", "watchdog.lock_convoys", "watchdog.scrub_divergences",
		"watchdog.wal_stalls",
	}
	// Histograms share one sub-schema; expand it instead of listing forty
	// near-identical lines.
	for _, h := range []string{"deferred.apply", "freshness.views.commit_to_visible", "lock.wait", "scrub.cycle_dur", "txn.apply", "txn.begin", "txn.commit_wait", "txn.fold", "txn.lock_wait", "wal.flush", "wal.fsync"} {
		for _, f := range []string{"count", "sum_ns", "mean_ns", "p50_ns", "p99_ns", "max_ns"} {
			schema = append(schema, h+"."+f)
		}
	}
	// Both heavy-hitter listings share the hot-group sub-schema.
	for _, h := range []string{"hotspots.top_delta", "hotspots.top_wait"} {
		for _, f := range []string{"count", "err", "key", "tree", "value", "view"} {
			schema = append(schema, h+"."+f)
		}
	}
	sort.Strings(schema)
	return schema
}

// collectKeyPaths walks decoded JSON and records every object key path,
// descending into the first element of arrays.
func collectKeyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			collectKeyPaths(p, sub, out)
		}
	case []any:
		if len(x) > 0 {
			collectKeyPaths(prefix, x[0], out)
		}
	}
}

// TestMetricsGoldenSchema asserts the JSON encoding of DB.Metrics() exposes
// exactly the documented key paths.
func TestMetricsGoldenSchema(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	seedAccounts(t, db, 4)

	// collectKeyPaths only descends into non-empty arrays, so every hotspot
	// listing must carry at least one element. The seed inserts populate
	// top_delta and the per-view cost table; a timed-out keyed lock wait
	// populates top_wait.
	holder, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
		t.Fatal(err)
	}
	waiter, err := db.BeginTx(context.Background(), vtxn.TxOptions{
		Isolation:   vtxn.ReadCommitted,
		LockTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := waiter.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(2)}); !errors.Is(err, vtxn.ErrLockTimeout) {
		t.Fatalf("expected lock timeout, got %v", err)
	}
	waiter.Rollback()
	holder.Rollback()

	// A deferred view populates the deferred.views listing (and the schema's
	// per-view watermark sub-paths).
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals_deferred",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyDeferred,
	}); err != nil {
		t.Fatal(err)
	}

	buf, err := json.Marshal(db.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	collectKeyPaths("", decoded, got)
	for _, top := range []string{"engine", "txn", "lock", "escrow", "wal", "ghosts", "recovery", "watchdog", "flightrec", "hotspots", "mvcc", "deferred", "cascade", "freshness", "scrub"} {
		if !got[top] {
			t.Fatalf("snapshot missing top-level section %q", top)
		}
		delete(got, top)
	}
	var gotPaths []string
	for p := range got {
		gotPaths = append(gotPaths, p)
	}
	sort.Strings(gotPaths)
	want := strings.Join(metricsSchema(), "\n")
	if have := strings.Join(gotPaths, "\n"); have != want {
		t.Fatalf("metrics JSON schema drifted.\n got:\n%s\n want:\n%s", have, want)
	}
}

// TestMetricsHandlerPrometheus drives real work through the engine and
// asserts the HTTP exposition is well-formed Prometheus text carrying the
// lock-wait, escrow-fold, and group-commit series.
func TestMetricsHandlerPrometheus(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	seedAccounts(t, db, 8)

	// Escrow-folding commits so the fold and group-commit series are nonzero.
	for i := 0; i < 3; i++ {
		tx, err := db.Begin(vtxn.ReadCommitted)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(int64(i))}, map[int]vtxn.Value{2: vtxn.Int(int64(200 + i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(vtxn.MetricsHandler(db))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		"vtxn_lock_wait_seconds",
		"vtxn_escrow_fold_batches_total",
		"vtxn_wal_group_commit_flushes_total",
		"vtxn_txn_commits_total 4",
		"vtxn_scrub_enabled 1",
		"vtxn_scrub_rows_verified_total",
		"vtxn_scrub_divergences_total 0",
		"vtxn_scrub_last_full_pass_unix",
		"vtxn_scrub_view_coverage_ts{view=\"branch_totals\"}",
		"vtxn_watchdog_signature_detections_total{signature=\"scrub-divergence\"} 0",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("exposition missing %q:\n%s", series, text)
		}
	}
	// Minimal format validation: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestTracerReceivesEvents wires a recording tracer through Options.Tracer
// and asserts the engine emits begin/end, fold, and group-commit events.
func TestTracerReceivesEvents(t *testing.T) {
	rec := &recordingTracer{}
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	seedAccounts(t, db, 2)

	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	seen := rec.kinds()
	for _, want := range []vtxn.TraceEventType{vtxn.TraceTxBegin, vtxn.TraceTxEnd, vtxn.TraceFold, vtxn.TraceGroupCommit} {
		if !seen[want] {
			t.Fatalf("tracer never saw %v (saw %v)", want, seen)
		}
	}
}

type recordingTracer struct {
	mu     sync.Mutex
	events []vtxn.TraceEvent
}

func (r *recordingTracer) TraceEvent(e vtxn.TraceEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordingTracer) snapshot() []vtxn.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]vtxn.TraceEvent(nil), r.events...)
}

func (r *recordingTracer) kinds() map[vtxn.TraceEventType]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[vtxn.TraceEventType]bool{}
	for _, e := range r.events {
		out[e.Type] = true
	}
	return out
}

// TestSlowLoggerFormat exercises the packaged slow-event tracer.
func TestSlowLoggerFormat(t *testing.T) {
	var sb strings.Builder
	l := vtxn.NewSlowLogger(&sb, time.Millisecond, "bench: ")
	l.TraceEvent(vtxn.TraceEvent{Type: vtxn.TraceLockWait, Dur: 5 * time.Millisecond, Resource: "tree#3[61]", Mode: "X", Outcome: "granted"})
	l.TraceEvent(vtxn.TraceEvent{Type: vtxn.TraceLockWait, Dur: 5 * time.Microsecond}) // below threshold
	out := sb.String()
	if !strings.Contains(out, "lock-wait") || !strings.Contains(out, "granted") {
		t.Fatalf("slow log missing event detail: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("below-threshold event was logged: %q", out)
	}
}
