package vtxn_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	vtxn "repro"
	"repro/internal/fault"
)

// lockedBuffer is an io.Writer sink safe for engine-path writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// induceDeadlock runs two transactions updating accounts rows 0 and 1 in
// opposite orders until one dies as the deadlock victim.
func induceDeadlock(t *testing.T, db *vtxn.DB) {
	t.Helper()
	errs := make(chan error, 2)
	var ready, release sync.WaitGroup
	ready.Add(2)
	release.Add(1)
	worker := func(first, second int64) {
		tx, err := db.Begin(vtxn.ReadCommitted)
		if err != nil {
			ready.Done()
			errs <- err
			return
		}
		defer tx.Rollback()
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(first)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
			ready.Done()
			errs <- err
			return
		}
		ready.Done()
		release.Wait()
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(second)}, map[int]vtxn.Value{2: vtxn.Int(2)}); err != nil {
			errs <- err
			return
		}
		errs <- tx.Commit()
	}
	go worker(0, 1)
	go worker(1, 0)
	ready.Wait()
	release.Done()
	var victim error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && victim == nil {
			victim = err
		}
	}
	if victim == nil {
		t.Fatal("expected one transaction to fail as deadlock victim")
	}
	if !errors.Is(victim, vtxn.ErrDeadlock) {
		t.Fatalf("victim error %v does not unwrap to vtxn.ErrDeadlock", victim)
	}
}

// TestFlightRecordDeadlockDump is the tentpole acceptance test: an induced
// deadlock automatically dumps a causal timeline to Options.FlightSink, and
// both the timeline and the JSONL dump carry the causally-linked spans of
// BOTH deadlocked transactions — begin, lock waits with resource/mode/
// outcome, and end.
func TestFlightRecordDeadlockDump(t *testing.T) {
	sink := &lockedBuffer{}
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{FlightSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	seedAccounts(t, db, 2)
	induceDeadlock(t, db)

	// The automatic sink dump fired at the moment of the deadlock.
	auto := sink.String()
	if !strings.Contains(auto, "vtxn flight record") {
		t.Fatalf("no automatic dump on deadlock; sink: %q", auto)
	}
	if !strings.Contains(auto, "reason: lock deadlock") {
		t.Fatalf("dump reason does not name the deadlock:\n%s", auto)
	}
	if !strings.Contains(auto, "=== spans ===") {
		t.Fatalf("dump missing the span summary:\n%s", auto)
	}

	// An explicit dump renders the same history on demand.
	var timeline bytes.Buffer
	if err := db.DumpFlightRecord(&timeline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(timeline.String(), "deadlock") {
		t.Fatalf("explicit timeline missing the deadlock:\n%s", timeline.String())
	}

	// The JSONL dump proves causal linkage: the victim's deadlock lock-wait
	// carries a span that resolves to its own tx-begin, the wait names the
	// contested resource and mode, and the other transaction's span appears
	// in the same history with its own begin and end.
	type rec struct {
		Seq      uint64 `json:"seq"`
		Span     uint64 `json:"span"`
		Type     string `json:"type"`
		Txn      uint64 `json:"txn"`
		Resource string `json:"resource"`
		Mode     string `json:"mode"`
		Outcome  string `json:"outcome"`
	}
	var jsonl bytes.Buffer
	if err := db.WriteFlightRecordJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	var (
		beginTxnBySpan = map[uint64]uint64{}
		endSpans       = map[uint64]string{}
		spanEvents     = map[uint64]int{}
		deadlock       *rec
	)
	sc := bufio.NewScanner(&jsonl)
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("JSONL line does not parse: %v: %s", err, sc.Text())
		}
		if r.Span != 0 {
			spanEvents[r.Span]++
		}
		switch r.Type {
		case "tx-begin":
			beginTxnBySpan[r.Span] = r.Txn
		case "tx-end":
			endSpans[r.Span] = r.Outcome
		case "lock-wait":
			if r.Outcome == "deadlock" {
				cp := r
				deadlock = &cp
			}
		}
	}
	if deadlock == nil {
		t.Fatal("JSONL history has no deadlock lock-wait event")
	}
	if deadlock.Resource == "" || deadlock.Mode == "" {
		t.Fatalf("deadlock wait lost its resource/mode: %+v", deadlock)
	}
	victimTxn, ok := beginTxnBySpan[deadlock.Span]
	if !ok {
		t.Fatalf("deadlock span s%d has no tx-begin record", deadlock.Span)
	}
	if victimTxn != deadlock.Txn {
		t.Fatalf("span s%d belongs to txn %d but the deadlock wait names txn %d",
			deadlock.Span, victimTxn, deadlock.Txn)
	}
	// The surviving transaction's span is causally present too: a second
	// distinct span with its own begin and at least one more event.
	otherSpans := 0
	for span := range beginTxnBySpan {
		if span != deadlock.Span && spanEvents[span] >= 2 {
			otherSpans++
		}
	}
	if otherSpans == 0 {
		t.Fatalf("history holds only the victim's span; want the partner transaction too (spans: %v)", spanEvents)
	}
	// The victim's span ends in an abort.
	if out := endSpans[deadlock.Span]; out != "abort" {
		t.Fatalf("victim span s%d ends with %q, want abort", deadlock.Span, out)
	}

	if m := db.Metrics(); !m.Flight.Enabled || m.Flight.Recorded == 0 || m.Flight.Dumps == 0 {
		t.Fatalf("flight metrics not reporting: %+v", m.Flight)
	}
}

// TestWatchdogDetectsWALFlushStall injects a write/fsync delay under the WAL
// and asserts the watchdog notices the group-commit flush not advancing:
// EventStall fires, watchdog_detections counts, and the sink gets a dump.
func TestWatchdogDetectsWALFlushStall(t *testing.T) {
	delayFS := fault.NewDelayFS(fault.OS{})
	sink := &lockedBuffer{}
	tracer := &recordingTracer{}
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{
		FS:                     delayFS,
		SyncMode:               vtxn.SyncData,
		Tracer:                 tracer,
		FlightSink:             sink,
		Watchdog:               true,
		WatchdogInterval:       10 * time.Millisecond,
		WatchdogStallThreshold: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	seedAccounts(t, db, 1)

	// Stall the disk, then commit: the flush holds the WAL's flush section
	// for the whole injected delay while the watchdog polls every 10ms.
	delayFS.SetDelay(600 * time.Millisecond)
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	delayFS.SetDelay(0)

	var stall *vtxn.TraceEvent
	for _, e := range tracer.snapshot() {
		if e.Type == vtxn.TraceStall {
			cp := e
			stall = &cp
			break
		}
	}
	if stall == nil {
		t.Fatal("watchdog emitted no EventStall during the injected WAL stall")
	}
	if stall.Phase != "wal-flush" {
		t.Fatalf("stall signature %q, want wal-flush", stall.Phase)
	}
	if stall.Dur < 100*time.Millisecond {
		t.Fatalf("stall age %s below the configured threshold", stall.Dur)
	}
	m := db.Metrics()
	if m.Watchdog.Detections == 0 || m.Watchdog.WALStalls == 0 {
		t.Fatalf("watchdog metrics not counted: %+v", m.Watchdog)
	}
	if !strings.Contains(sink.String(), "watchdog stall: wal-flush") {
		t.Fatalf("no flight-record dump for the stall; sink: %q", sink.String())
	}
}

// TestFlightRecorderDisabled: FlightRecorderSize < 0 switches the recorder
// off — dumps fail with the sentinel, metrics report disabled, and events
// still reach Options.Tracer (unstamped).
func TestFlightRecorderDisabled(t *testing.T) {
	tracer := &recordingTracer{}
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{
		FlightRecorderSize: -1,
		Tracer:             tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	seedAccounts(t, db, 1)

	if err := db.DumpFlightRecord(io.Discard); !errors.Is(err, vtxn.ErrFlightDisabled) {
		t.Fatalf("DumpFlightRecord = %v, want ErrFlightDisabled", err)
	}
	if err := db.WriteFlightRecordJSONL(io.Discard); !errors.Is(err, vtxn.ErrFlightDisabled) {
		t.Fatalf("WriteFlightRecordJSONL = %v, want ErrFlightDisabled", err)
	}
	if m := db.Metrics(); m.Flight.Enabled {
		t.Fatalf("flight metrics claim enabled: %+v", m.Flight)
	}
	evs := tracer.snapshot()
	if len(evs) == 0 {
		t.Fatal("tracer starved when the recorder is disabled")
	}
	for _, e := range evs {
		if e.Seq != 0 || e.Span != 0 {
			t.Fatalf("event stamped without a recorder: %+v", e)
		}
	}

	srv := httptest.NewServer(vtxn.MetricsHandler(db))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/debug/flightrec with recorder disabled: status %d, want 503", resp.StatusCode)
	}
}

// TestMetricsHandlerConcurrentScrape races four scrapers (metrics text and
// the JSONL flight-record endpoint) against a live banking workload — the
// -race proof that snapshotting and ring dumps are safe under load.
func TestMetricsHandlerConcurrentScrape(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	seedAccounts(t, db, 8)

	srv := httptest.NewServer(vtxn.MetricsHandler(db))
	defer srv.Close()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	scrapeErr := make(chan error, 8)
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		path := "/"
		if i%2 == 1 {
			path = "/debug/flightrec"
		}
		go func(path string) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					scrapeErr <- err
					return
				}
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					scrapeErr <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					scrapeErr <- errors.New(path + ": status " + resp.Status)
					return
				}
			}
		}(path)
	}

	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 50; i++ {
				tx, err := db.Begin(vtxn.ReadCommitted)
				if err != nil {
					return
				}
				row := int64((w*50 + i) % 8)
				if err := tx.Update("accounts", vtxn.Row{vtxn.Int(row)}, map[int]vtxn.Value{2: vtxn.Int(int64(i))}); err != nil {
					tx.Rollback()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	scrapers.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}
}

// TestFlightRecordJSONLGoldenSchema pins the JSONL dump's key set: required
// keys on every record, optional keys drawn only from the documented set.
// Like the metrics snapshot, the schema may grow but never rename silently.
func TestFlightRecordJSONLGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupPublic(t, db)
	seedAccounts(t, db, 2)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen so recovery events (the "phase" key) enter the record, then
	// deadlock two transactions so failed lock waits (resource/mode/outcome)
	// and commit-path events (spans, folds, group commits) follow them.
	db, err = vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	induceDeadlock(t, db)
	// A deferred view exercises the async-maintenance events: the commit's
	// deferred-publish, the applier's fold, and the watermark advance whose
	// multi-parent "spans" key links back to the originating commit.
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name: "branch_totals_deferred", Kind: vtxn.ViewAggregate,
		Source:   "accounts",
		GroupBy:  []string{"branch"},
		Aggs:     []vtxn.AggSpec{vtxn.CountRows(), vtxn.Sum("balance")},
		Strategy: vtxn.StrategyDeferred,
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(42)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := db.WaitForViewWatermark(ctx, "branch_totals_deferred", tx.CommitTS()); err != nil {
		t.Fatal(err)
	}

	var jsonl bytes.Buffer
	if err := db.WriteFlightRecordJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	required := []string{"seq", "wall_ns", "type"}
	optional := map[string]bool{
		"span": true, "txn": true, "dur_ns": true, "resource": true,
		"mode": true, "outcome": true, "rows": true, "phase": true,
		"spans": true,
	}
	seen := map[string]bool{}
	records := 0
	sc := bufio.NewScanner(&jsonl)
	for sc.Scan() {
		records++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("record %d does not parse: %v", records, err)
		}
		for _, k := range required {
			if _, ok := m[k]; !ok {
				t.Fatalf("record %d missing required key %q: %s", records, k, sc.Text())
			}
		}
		for k := range m {
			seen[k] = true
			isRequired := k == "seq" || k == "wall_ns" || k == "type"
			if !isRequired && !optional[k] {
				t.Fatalf("record %d carries undocumented key %q — extend the golden schema deliberately: %s",
					records, k, sc.Text())
			}
		}
	}
	if records == 0 {
		t.Fatal("JSONL dump is empty")
	}
	// The workload above must have exercised the whole optional set; a key
	// that stops appearing means a field silently stopped being populated.
	for k := range optional {
		if !seen[k] {
			t.Errorf("optional key %q never appeared across %d records", k, records)
		}
	}
}

// TestSlowLoggerAlwaysPrintsFailures pins the SlowLogger contract: failed
// lock waits and stall events print regardless of the duration threshold;
// fast granted waits stay suppressed.
func TestSlowLoggerAlwaysPrintsFailures(t *testing.T) {
	var sb strings.Builder
	l := vtxn.NewSlowLogger(&sb, time.Hour, "t: ")
	l.TraceEvent(vtxn.TraceEvent{Type: vtxn.TraceLockWait, Dur: 3 * time.Microsecond,
		Resource: "row/accounts/0", Mode: "X", Outcome: "deadlock"})
	l.TraceEvent(vtxn.TraceEvent{Type: vtxn.TraceLockWait, Dur: 3 * time.Microsecond,
		Resource: "row/accounts/1", Mode: "X", Outcome: "timeout"})
	l.TraceEvent(vtxn.TraceEvent{Type: vtxn.TraceStall, Phase: "wal-flush",
		Resource: "flush active 3s", Dur: 3 * time.Second})
	l.TraceEvent(vtxn.TraceEvent{Type: vtxn.TraceLockWait, Dur: 3 * time.Microsecond,
		Resource: "row/accounts/2", Mode: "X", Outcome: "granted"}) // suppressed
	out := sb.String()
	for _, want := range []string{"deadlock", "timeout", "stall wal-flush"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow log dropped a %q line below threshold:\n%s", want, out)
		}
	}
	if strings.Contains(out, "granted") {
		t.Fatalf("fast granted wait should stay below the threshold:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Fatalf("want exactly 3 lines, got %d:\n%s", got, out)
	}
}
